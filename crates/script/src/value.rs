//! Runtime values.

use std::fmt;
use std::rc::Rc;

/// A Flua runtime value.
///
/// Lists use `Rc<Vec<_>>` with copy-on-write semantics (mutation is only
/// possible through host functions, which clone), keeping the VM simple and
/// free of cycles.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The absent value.
    #[default]
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Num(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Immutable list.
    List(Rc<Vec<Value>>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Creates a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(items))
    }

    /// Truthiness: `nil` and `false` are falsy, everything else truthy
    /// (Lua's rule).
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Num(_) => "num",
            Value::Str(_) => "str",
            Value::List(_) => "list",
        }
    }

    /// The numeric value if this is an `Int` or `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer value if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The list slice if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Approximate heap bytes owned *directly* by this value: string bytes
    /// or list slots plus a fixed allocation overhead; scalars are free.
    ///
    /// Shallow by design — list elements are `Rc`-shared with whatever
    /// produced them and were charged when *they* were allocated. The VM
    /// uses this to charge freshly built strings/lists against
    /// [`crate::vm::VmLimits::max_memory`].
    pub fn heap_bytes(&self) -> usize {
        const ALLOC_OVERHEAD: usize = 40; // Rc header + Vec/str bookkeeping
        match self {
            Value::Str(s) => ALLOC_OVERHEAD + s.len(),
            Value::List(l) => ALLOC_OVERHEAD + l.len() * std::mem::size_of::<Value>(),
            _ => 0,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => f.write_str("nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Num(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(0).truthy(), "0 is truthy, as in Lua");
        assert!(Value::str("").truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Num(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("a").as_f64(), None);
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Int(1).as_int(), Some(1));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::list(vec![Value::Int(1), Value::str("a")]).to_string(), "[1, a]");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Nil.type_name(), "nil");
        assert_eq!(Value::list(vec![]).type_name(), "list");
    }

    #[test]
    fn heap_bytes_scale_with_payload() {
        assert_eq!(Value::Int(7).heap_bytes(), 0);
        assert_eq!(Value::Nil.heap_bytes(), 0);
        let short = Value::str("ab").heap_bytes();
        let long = Value::str("abcdefgh").heap_bytes();
        assert_eq!(long - short, 6);
        let one = Value::list(vec![Value::Int(1)]).heap_bytes();
        let three = Value::list(vec![Value::Int(1); 3]).heap_bytes();
        assert_eq!(three - one, 2 * std::mem::size_of::<Value>());
    }
}
