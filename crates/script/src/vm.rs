//! The Flua stack virtual machine.
//!
//! Execution is fuel-limited: every instruction costs one unit, so hostile
//! or buggy scripts pushed from a simulated C&C server cannot stall the
//! simulation. Host capabilities are injected through [`HostEnv`], which is
//! how malware modules read files, record audio, or enumerate bluetooth
//! devices *in the simulated world* — the VM itself is pure.

use std::collections::HashMap;
use std::rc::Rc;

use crate::compiler::{Chunk, FuncProto, Op};
use crate::error::RunScriptError;
use crate::value::Value;

/// Host-function surface a script runs against.
///
/// Resolution order for a call is: script-defined functions, then VM
/// builtins (`len`, `str`, `push`, `contains`, `range`), then the host.
pub trait HostEnv {
    /// Invokes host function `name`. Returns `Ok(None)` when the host does
    /// not define `name` (the VM then reports an undefined function).
    ///
    /// # Errors
    ///
    /// Host failures surface as [`RunScriptError::Host`].
    fn call_host(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, RunScriptError>;
}

/// A [`HostEnv`] with no functions.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHost;

impl HostEnv for NoHost {
    fn call_host(&mut self, _name: &str, _args: &[Value]) -> Result<Option<Value>, RunScriptError> {
        Ok(None)
    }
}

/// A host-callable function: the boxed closure a [`FnHost`] dispatches to.
pub type HostFn<'a> = Box<dyn FnMut(&[Value]) -> Result<Value, RunScriptError> + 'a>;

/// A [`HostEnv`] backed by a map of closures — convenient for tests and for
/// composing module capabilities.
#[derive(Default)]
pub struct FnHost<'a> {
    fns: HashMap<String, HostFn<'a>>,
}

impl<'a> FnHost<'a> {
    /// Creates an empty host.
    pub fn new() -> Self {
        FnHost { fns: HashMap::new() }
    }

    /// Registers a host function. Replaces any previous function of the same
    /// name.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&[Value]) -> Result<Value, RunScriptError> + 'a,
    {
        self.fns.insert(name.into(), Box::new(f));
        self
    }
}

impl std::fmt::Debug for FnHost<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("FnHost").field("functions", &names).finish()
    }
}

impl HostEnv for FnHost<'_> {
    fn call_host(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, RunScriptError> {
        match self.fns.get_mut(name) {
            Some(f) => f(args).map(Some),
            None => Ok(None),
        }
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmLimits {
    /// Maximum instructions executed.
    pub fuel: u64,
    /// Maximum value-stack depth.
    pub max_stack: usize,
    /// Maximum call depth.
    pub max_frames: usize,
    /// Maximum bytes of strings/lists a run may allocate (charged on `..`
    /// concat, list literals, and allocating builtins/host results). Guards
    /// against memory bombs that fuel alone cannot stop — a doubling concat
    /// loop reaches gigabytes in ~30 cheap instructions.
    pub max_memory: usize,
    /// Extra fuel charged for every host-function dispatch, on top of the
    /// call instruction itself. Host calls do real work in the simulated
    /// world (file scans, beacons); pricing them above plain ops keeps a
    /// host-call spin loop from monopolising a sweep point.
    pub host_call_fuel: u64,
}

impl Default for VmLimits {
    fn default() -> Self {
        VmLimits {
            fuel: 1_000_000,
            max_stack: 4_096,
            max_frames: 64,
            max_memory: 16 * 1024 * 1024,
            host_call_fuel: 8,
        }
    }
}

/// Outcome of a successful run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The top-level return value (`nil` if the script fell off the end).
    pub value: Value,
    /// Instructions executed.
    pub fuel_used: u64,
    /// Bytes of strings/lists allocated (the quantity limited by
    /// [`VmLimits::max_memory`]).
    pub mem_allocated: usize,
}

/// The virtual machine. Holds globals that persist across runs, so a
/// long-lived module can keep state between activations.
#[derive(Debug, Default)]
pub struct Vm {
    globals: HashMap<String, Value>,
    last_fuel_used: u64,
    last_mem_allocated: usize,
}

struct Frame {
    proto: Option<Rc<FuncProto>>, // None = top level
    ip: usize,
    stack_base: usize,
    locals: HashMap<u16, Value>,
}

impl Vm {
    /// Creates a VM with empty globals.
    pub fn new() -> Self {
        Vm::default()
    }

    /// Reads a global by name.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Sets a global (visible to subsequent runs).
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        self.globals.insert(name.into(), value);
    }

    /// Fuel consumed by the most recent [`Vm::run`], whether it succeeded
    /// or faulted — errors carry no fuel figure, so fault reporting (e.g.
    /// a sweep's `ScriptFault` tag) reads it from here.
    pub fn last_fuel_used(&self) -> u64 {
        self.last_fuel_used
    }

    /// Bytes allocated by the most recent [`Vm::run`] (success or fault).
    pub fn last_mem_allocated(&self) -> usize {
        self.last_mem_allocated
    }

    /// Runs a chunk to completion under `limits`.
    ///
    /// # Errors
    ///
    /// Any [`RunScriptError`], including [`RunScriptError::OutOfFuel`] when
    /// the instruction budget is exhausted and
    /// [`RunScriptError::OutOfMemory`] when allocations exceed
    /// [`VmLimits::max_memory`].
    pub fn run(
        &mut self,
        chunk: &Chunk,
        host: &mut dyn HostEnv,
        limits: VmLimits,
    ) -> Result<RunOutcome, RunScriptError> {
        let mut fuel = limits.fuel;
        let mut mem: usize = 0;
        let result = self.exec(chunk, host, limits, &mut fuel, &mut mem);
        self.last_fuel_used = limits.fuel - fuel;
        self.last_mem_allocated = mem;
        result.map(|value| RunOutcome { value, fuel_used: limits.fuel - fuel, mem_allocated: mem })
    }

    fn exec(
        &mut self,
        chunk: &Chunk,
        host: &mut dyn HostEnv,
        limits: VmLimits,
        fuel: &mut u64,
        mem: &mut usize,
    ) -> Result<Value, RunScriptError> {
        let mut stack: Vec<Value> = Vec::with_capacity(64);
        let mut frames: Vec<Frame> =
            vec![Frame { proto: None, ip: 0, stack_base: 0, locals: HashMap::new() }];
        loop {
            let frame = frames.last_mut().expect("at least one frame");
            let code: &[Op] = match &frame.proto {
                Some(p) => &p.code,
                None => &chunk.code,
            };
            if frame.ip >= code.len() {
                // Fell off the end: implicit nil return.
                let done = self.do_return(&mut frames, &mut stack, Value::Nil);
                if done {
                    return Ok(Value::Nil);
                }
                continue;
            }
            let op = code[frame.ip].clone();
            frame.ip += 1;
            if *fuel == 0 {
                return Err(RunScriptError::OutOfFuel);
            }
            *fuel -= 1;
            if stack.len() > limits.max_stack {
                return Err(RunScriptError::StackOverflow);
            }
            match op {
                Op::Const(i) => stack.push(chunk.consts[i as usize].clone()),
                Op::Nil => stack.push(Value::Nil),
                Op::True => stack.push(Value::Bool(true)),
                Op::False => stack.push(Value::Bool(false)),
                Op::Load(i) => {
                    let v = frame
                        .locals
                        .get(&i)
                        .cloned()
                        .or_else(|| self.globals.get(chunk.name(i)).cloned())
                        .ok_or_else(|| RunScriptError::UndefinedVariable(chunk.name(i).to_owned()))?;
                    stack.push(v);
                }
                Op::Declare(i) => {
                    let v = pop(&mut stack)?;
                    if frames.len() == 1 {
                        self.globals.insert(chunk.name(i).to_owned(), v);
                    } else {
                        frames.last_mut().expect("frame").locals.insert(i, v);
                    }
                }
                Op::Store(i) => {
                    let v = pop(&mut stack)?;
                    let frame = frames.last_mut().expect("frame");
                    if let std::collections::hash_map::Entry::Occupied(mut e) = frame.locals.entry(i) {
                        e.insert(v);
                    } else {
                        // Existing global or new global (top-level semantics).
                        self.globals.insert(chunk.name(i).to_owned(), v);
                    }
                }
                Op::MakeList(n) => {
                    let n = n as usize;
                    if stack.len() < n {
                        return Err(RunScriptError::StackOverflow);
                    }
                    let items = stack.split_off(stack.len() - n);
                    let v = Value::list(items);
                    charge(mem, limits.max_memory, &v)?;
                    stack.push(v);
                }
                Op::Add => binary_num(&mut stack, "+", |a, b| a.checked_add(b), |a, b| a + b)?,
                Op::Sub => binary_num(&mut stack, "-", |a, b| a.checked_sub(b), |a, b| a - b)?,
                Op::Mul => binary_num(&mut stack, "*", |a, b| a.checked_mul(b), |a, b| a * b)?,
                Op::Div => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    let v = match (&a, &b) {
                        (Value::Int(_), Value::Int(0)) => return Err(RunScriptError::DivisionByZero),
                        (Value::Int(x), Value::Int(y)) => Value::Int(x / y),
                        _ => {
                            let (x, y) = both_nums(&a, &b, "/")?;
                            if y == 0.0 {
                                return Err(RunScriptError::DivisionByZero);
                            }
                            Value::Num(x / y)
                        }
                    };
                    stack.push(v);
                }
                Op::Mod => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    let v = match (&a, &b) {
                        (Value::Int(_), Value::Int(0)) => return Err(RunScriptError::DivisionByZero),
                        (Value::Int(x), Value::Int(y)) => Value::Int(x.rem_euclid(*y)),
                        _ => {
                            let (x, y) = both_nums(&a, &b, "%")?;
                            if y == 0.0 {
                                return Err(RunScriptError::DivisionByZero);
                            }
                            Value::Num(x.rem_euclid(y))
                        }
                    };
                    stack.push(v);
                }
                Op::Concat => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    let v = Value::str(format!("{a}{b}"));
                    charge(mem, limits.max_memory, &v)?;
                    stack.push(v);
                }
                Op::Eq => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(Value::Bool(values_eq(&a, &b)));
                }
                Op::Ne => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(Value::Bool(!values_eq(&a, &b)));
                }
                Op::Lt => compare(&mut stack, "<", |o| o == std::cmp::Ordering::Less)?,
                Op::Le => compare(&mut stack, "<=", |o| o != std::cmp::Ordering::Greater)?,
                Op::Gt => compare(&mut stack, ">", |o| o == std::cmp::Ordering::Greater)?,
                Op::Ge => compare(&mut stack, ">=", |o| o != std::cmp::Ordering::Less)?,
                Op::Neg => {
                    let a = pop(&mut stack)?;
                    let v = match a {
                        Value::Int(x) => Value::Int(-x),
                        Value::Num(x) => Value::Num(-x),
                        other => {
                            return Err(RunScriptError::TypeMismatch {
                                op: "-".into(),
                                found: other.type_name().into(),
                            })
                        }
                    };
                    stack.push(v);
                }
                Op::Not => {
                    let a = pop(&mut stack)?;
                    stack.push(Value::Bool(!a.truthy()));
                }
                Op::Index => {
                    let idx = pop(&mut stack)?;
                    let target = pop(&mut stack)?;
                    let list = target.as_list().ok_or_else(|| RunScriptError::TypeMismatch {
                        op: "[]".into(),
                        found: target.type_name().into(),
                    })?;
                    let i = idx
                        .as_int()
                        .ok_or_else(|| RunScriptError::BadIndex(format!("index is {}", idx.type_name())))?;
                    if i < 0 || i as usize >= list.len() {
                        return Err(RunScriptError::BadIndex(format!(
                            "index {i} out of range 0..{}",
                            list.len()
                        )));
                    }
                    stack.push(list[i as usize].clone());
                }
                Op::Jump(t) => frames.last_mut().expect("frame").ip = t as usize,
                Op::JumpIfFalse(t) => {
                    let v = pop(&mut stack)?;
                    if !v.truthy() {
                        frames.last_mut().expect("frame").ip = t as usize;
                    }
                }
                Op::JumpIfFalseKeep(t) => {
                    let v = stack.last().ok_or(RunScriptError::StackOverflow)?;
                    if !v.truthy() {
                        frames.last_mut().expect("frame").ip = t as usize;
                    } else {
                        stack.pop();
                    }
                }
                Op::JumpIfTrueKeep(t) => {
                    let v = stack.last().ok_or(RunScriptError::StackOverflow)?;
                    if v.truthy() {
                        frames.last_mut().expect("frame").ip = t as usize;
                    } else {
                        stack.pop();
                    }
                }
                Op::Call { name, argc } => {
                    let argc = argc as usize;
                    if stack.len() < argc {
                        return Err(RunScriptError::StackOverflow);
                    }
                    let args = stack.split_off(stack.len() - argc);
                    let fname = chunk.name(name);
                    if let Some(proto) = chunk.functions.get(fname).cloned() {
                        if proto.params.len() != argc {
                            return Err(RunScriptError::ArityMismatch {
                                name: fname.to_owned(),
                                expected: proto.params.len(),
                                got: argc,
                            });
                        }
                        if frames.len() >= limits.max_frames {
                            return Err(RunScriptError::StackOverflow);
                        }
                        let mut locals = HashMap::new();
                        for (p, v) in proto.params.iter().zip(args) {
                            // Parameter names live in the shared name table.
                            let idx = chunk.names.iter().position(|n| n == p).map(|i| i as u16);
                            match idx {
                                Some(i) => {
                                    locals.insert(i, v);
                                }
                                None => {
                                    // Parameter never referenced in the body;
                                    // binding is unobservable, skip it.
                                }
                            }
                        }
                        frames.push(Frame { proto: Some(proto), ip: 0, stack_base: stack.len(), locals });
                    } else if let Some(v) = builtin(fname, &args)? {
                        charge(mem, limits.max_memory, &v)?;
                        stack.push(v);
                    } else {
                        // Anything past the builtins is a host dispatch;
                        // surcharge it before the host runs.
                        if *fuel < limits.host_call_fuel {
                            return Err(RunScriptError::OutOfFuel);
                        }
                        *fuel -= limits.host_call_fuel;
                        match host.call_host(fname, &args)? {
                            Some(v) => {
                                charge(mem, limits.max_memory, &v)?;
                                stack.push(v);
                            }
                            None => return Err(RunScriptError::UndefinedFunction(fname.to_owned())),
                        }
                    }
                }
                Op::Return => {
                    let v = pop(&mut stack)?;
                    let done = self.do_return(&mut frames, &mut stack, v.clone());
                    if done {
                        return Ok(v);
                    }
                }
                Op::ReturnNil => {
                    let done = self.do_return(&mut frames, &mut stack, Value::Nil);
                    if done {
                        return Ok(Value::Nil);
                    }
                }
                Op::Pop => {
                    pop(&mut stack)?;
                }
            }
        }
    }

    /// Pops a frame, truncating the stack and pushing the return value into
    /// the caller. Returns `true` when the popped frame was the last one.
    fn do_return(&mut self, frames: &mut Vec<Frame>, stack: &mut Vec<Value>, value: Value) -> bool {
        let frame = frames.pop().expect("frame");
        stack.truncate(frame.stack_base);
        if frames.is_empty() {
            true
        } else {
            stack.push(value);
            false
        }
    }
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, RunScriptError> {
    stack.pop().ok_or(RunScriptError::StackOverflow)
}

/// Charges a freshly allocated value against the memory budget.
fn charge(mem: &mut usize, limit: usize, v: &Value) -> Result<(), RunScriptError> {
    let add = v.heap_bytes();
    if add != 0 {
        *mem = mem.saturating_add(add);
        if *mem > limit {
            return Err(RunScriptError::OutOfMemory { used: *mem, limit });
        }
    }
    Ok(())
}

fn both_nums(a: &Value, b: &Value, op: &str) -> Result<(f64, f64), RunScriptError> {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(RunScriptError::TypeMismatch {
            op: op.to_owned(),
            found: format!("{} and {}", a.type_name(), b.type_name()),
        }),
    }
}

fn binary_num(
    stack: &mut Vec<Value>,
    op: &str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    num_op: impl Fn(f64, f64) -> f64,
) -> Result<(), RunScriptError> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    let v = match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => match int_op(*x, *y) {
            Some(r) => Value::Int(r),
            None => Value::Num(num_op(*x as f64, *y as f64)), // overflow widens
        },
        _ => {
            let (x, y) = both_nums(&a, &b, op)?;
            Value::Num(num_op(x, y))
        }
    };
    stack.push(v);
    Ok(())
}

fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Num(y)) | (Value::Num(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

fn compare(
    stack: &mut Vec<Value>,
    op: &str,
    accept: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<(), RunScriptError> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    let ord = match (&a, &b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => {
            let (x, y) = both_nums(&a, &b, op)?;
            x.partial_cmp(&y).ok_or_else(|| RunScriptError::TypeMismatch {
                op: op.to_owned(),
                found: "NaN comparison".into(),
            })?
        }
    };
    stack.push(Value::Bool(accept(ord)));
    Ok(())
}

/// VM builtins. Returns `Ok(None)` when `name` is not a builtin.
fn builtin(name: &str, args: &[Value]) -> Result<Option<Value>, RunScriptError> {
    let arity = |expected: usize| -> Result<(), RunScriptError> {
        if args.len() != expected {
            Err(RunScriptError::ArityMismatch { name: name.to_owned(), expected, got: args.len() })
        } else {
            Ok(())
        }
    };
    match name {
        "len" => {
            arity(1)?;
            let v = match &args[0] {
                Value::Str(s) => s.len() as i64,
                Value::List(l) => l.len() as i64,
                other => {
                    return Err(RunScriptError::TypeMismatch {
                        op: "len".into(),
                        found: other.type_name().into(),
                    })
                }
            };
            Ok(Some(Value::Int(v)))
        }
        "str" => {
            arity(1)?;
            Ok(Some(Value::str(args[0].to_string())))
        }
        "push" => {
            arity(2)?;
            let list = args[0].as_list().ok_or_else(|| RunScriptError::TypeMismatch {
                op: "push".into(),
                found: args[0].type_name().into(),
            })?;
            let mut v = list.to_vec();
            v.push(args[1].clone());
            Ok(Some(Value::list(v)))
        }
        "contains" => {
            arity(2)?;
            let v = match (&args[0], &args[1]) {
                (Value::Str(hay), Value::Str(needle)) => hay.contains(&**needle),
                (Value::List(items), needle) => items.iter().any(|i| values_eq(i, needle)),
                (other, _) => {
                    return Err(RunScriptError::TypeMismatch {
                        op: "contains".into(),
                        found: other.type_name().into(),
                    })
                }
            };
            Ok(Some(Value::Bool(v)))
        }
        "range" => {
            arity(1)?;
            let n = args[0].as_int().ok_or_else(|| RunScriptError::TypeMismatch {
                op: "range".into(),
                found: args[0].type_name().into(),
            })?;
            if !(0..=1_000_000).contains(&n) {
                return Err(RunScriptError::BadIndex(format!("range({n}) out of bounds")));
            }
            Ok(Some(Value::list((0..n).map(Value::Int).collect())))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    fn eval(src: &str) -> Result<Value, RunScriptError> {
        let chunk = compile(src).expect("compiles");
        let mut vm = Vm::new();
        vm.run(&chunk, &mut NoHost, VmLimits::default()).map(|o| o.value)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("return 1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval("return (1 + 2) * 3").unwrap(), Value::Int(9));
        assert_eq!(eval("return 7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval("return 7.0 / 2").unwrap(), Value::Num(3.5));
        assert_eq!(eval("return 7 % 3").unwrap(), Value::Int(1));
        assert_eq!(eval("return -5 + 1").unwrap(), Value::Int(-4));
    }

    #[test]
    fn overflow_widens_to_float() {
        let v = eval("return 9223372036854775807 + 1").unwrap();
        assert!(matches!(v, Value::Num(_)));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(eval("return 1 / 0"), Err(RunScriptError::DivisionByZero));
        assert_eq!(eval("return 1 % 0"), Err(RunScriptError::DivisionByZero));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("return 1 < 2 and 2 <= 2").unwrap(), Value::Bool(true));
        assert_eq!(eval("return 3 > 4 or 4 >= 5").unwrap(), Value::Bool(false));
        assert_eq!(eval("return not nil").unwrap(), Value::Bool(true));
        assert_eq!(eval("return \"a\" < \"b\"").unwrap(), Value::Bool(true));
        assert_eq!(eval("return 1 == 1.0").unwrap(), Value::Bool(true));
        assert_eq!(eval("return 1 != 2").unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_preserves_value_semantics() {
        assert_eq!(eval("return nil or 5").unwrap(), Value::Int(5));
        assert_eq!(eval("return false and crash()").unwrap(), Value::Bool(false));
        assert_eq!(eval("return 3 and 4").unwrap(), Value::Int(4));
        assert_eq!(eval("return 3 or crash()").unwrap(), Value::Int(3));
    }

    #[test]
    fn strings_and_concat() {
        assert_eq!(eval("return \"a\" .. \"b\" .. 3").unwrap(), Value::str("ab3"));
        assert_eq!(eval("return len(\"hello\")").unwrap(), Value::Int(5));
        assert_eq!(eval("return contains(\"hello.docx\", \".docx\")").unwrap(), Value::Bool(true));
    }

    #[test]
    fn variables_and_scope() {
        assert_eq!(eval("let x = 1\nx = x + 1\nreturn x").unwrap(), Value::Int(2));
        assert_eq!(
            eval("let x = 10\nfn f() return x end\nreturn f()").unwrap(),
            Value::Int(10),
            "globals visible inside functions"
        );
        assert_eq!(
            eval("let x = 1\nfn f(x) x = 99 return x end\nf(5)\nreturn x").unwrap(),
            Value::Int(1),
            "parameters shadow and do not leak"
        );
    }

    #[test]
    fn undefined_variable_and_function() {
        assert_eq!(eval("return nope"), Err(RunScriptError::UndefinedVariable("nope".into())));
        assert_eq!(eval("return nope()"), Err(RunScriptError::UndefinedFunction("nope".into())));
    }

    #[test]
    fn if_elseif_else() {
        let src = "fn grade(n) if n >= 90 then return \"A\" elseif n >= 80 then return \"B\" else return \"C\" end end\nreturn grade(85)";
        assert_eq!(eval(src).unwrap(), Value::str("B"));
    }

    #[test]
    fn while_loop_and_break() {
        let src = "let i = 0\nlet total = 0\nwhile true do\n  i = i + 1\n  if i > 10 then break end\n  total = total + i\nend\nreturn total";
        assert_eq!(eval(src).unwrap(), Value::Int(55));
    }

    #[test]
    fn for_in_over_list() {
        let src = "let total = 0\nfor x in [1, 2, 3, 4] do total = total + x end\nreturn total";
        assert_eq!(eval(src).unwrap(), Value::Int(10));
    }

    #[test]
    fn for_in_with_break() {
        let src = "let found = nil\nfor f in [\"a.txt\", \"b.docx\", \"c.ppt\"] do\n  if contains(f, \".docx\") then found = f break end\nend\nreturn found";
        assert_eq!(eval(src).unwrap(), Value::str("b.docx"));
    }

    #[test]
    fn nested_loops_break_inner_only() {
        let src = "let count = 0\nfor i in range(3) do\n  for j in range(10) do\n    if j == 2 then break end\n    count = count + 1\n  end\nend\nreturn count";
        assert_eq!(eval(src).unwrap(), Value::Int(6));
    }

    #[test]
    fn functions_recursion() {
        let src = "fn fib(n) if n < 2 then return n end return fib(n - 1) + fib(n - 2) end\nreturn fib(12)";
        assert_eq!(eval(src).unwrap(), Value::Int(144));
    }

    #[test]
    fn arity_mismatch() {
        assert!(matches!(
            eval("fn f(a, b) return a end\nreturn f(1)"),
            Err(RunScriptError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn lists_push_index() {
        assert_eq!(eval("return [10, 20, 30][1]").unwrap(), Value::Int(20));
        assert_eq!(eval("return len(push([1], 2))").unwrap(), Value::Int(2));
        assert!(matches!(eval("return [1][5]"), Err(RunScriptError::BadIndex(_))));
        assert!(matches!(eval("return [1][-1]"), Err(RunScriptError::BadIndex(_))));
        assert!(matches!(eval("return 3[0]"), Err(RunScriptError::TypeMismatch { .. })));
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let chunk = compile("while true do end").unwrap();
        let mut vm = Vm::new();
        let err = vm.run(&chunk, &mut NoHost, VmLimits { fuel: 10_000, ..VmLimits::default() }).unwrap_err();
        assert_eq!(err, RunScriptError::OutOfFuel);
    }

    #[test]
    fn recursion_depth_limited() {
        let chunk = compile("fn f(n) return f(n + 1) end\nreturn f(0)").unwrap();
        let mut vm = Vm::new();
        let err = vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap_err();
        assert_eq!(err, RunScriptError::StackOverflow);
    }

    #[test]
    fn host_functions_are_callable() {
        let chunk = compile("return exfiltrate(\"secret.docx\", 1024)").unwrap();
        let mut vm = Vm::new();
        let mut uploaded: Vec<(String, i64)> = Vec::new();
        {
            let mut host = FnHost::new();
            host.register("exfiltrate", |args| Ok(Value::str(format!("queued:{}:{}", args[0], args[1]))));
            let out = vm.run(&chunk, &mut host, VmLimits::default()).unwrap();
            assert_eq!(out.value, Value::str("queued:secret.docx:1024"));
        }
        // Borrow-capturing host
        let chunk2 = compile("upload(\"a\", 1)\nupload(\"b\", 2)").unwrap();
        {
            let mut host = FnHost::new();
            host.register("upload", |args| {
                uploaded.push((args[0].to_string(), args[1].as_int().unwrap()));
                Ok(Value::Nil)
            });
            vm.run(&chunk2, &mut host, VmLimits::default()).unwrap();
        }
        assert_eq!(uploaded, vec![("a".into(), 1), ("b".into(), 2)]);
    }

    #[test]
    fn host_error_propagates() {
        let chunk = compile("return fail()").unwrap();
        let mut vm = Vm::new();
        let mut host = FnHost::new();
        host.register("fail", |_| Err(RunScriptError::Host("boom".into())));
        assert_eq!(
            vm.run(&chunk, &mut host, VmLimits::default()).unwrap_err(),
            RunScriptError::Host("boom".into())
        );
    }

    #[test]
    fn globals_persist_across_runs() {
        let mut vm = Vm::new();
        let c1 = compile("let counter = 41").unwrap();
        vm.run(&c1, &mut NoHost, VmLimits::default()).unwrap();
        let c2 = compile("counter = counter + 1\nreturn counter").unwrap();
        let out = vm.run(&c2, &mut NoHost, VmLimits::default()).unwrap();
        assert_eq!(out.value, Value::Int(42));
        assert_eq!(vm.global("counter"), Some(&Value::Int(42)));
    }

    #[test]
    fn set_global_injects_configuration() {
        let mut vm = Vm::new();
        vm.set_global("threshold", Value::Int(100));
        let chunk = compile("return threshold * 2").unwrap();
        assert_eq!(vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap().value, Value::Int(200));
    }

    #[test]
    fn fuel_accounting_reported() {
        let chunk = compile("return 1 + 1").unwrap();
        let mut vm = Vm::new();
        let out = vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap();
        assert!(out.fuel_used > 0 && out.fuel_used < 20);
    }

    #[test]
    fn builtin_range_bounds() {
        assert!(matches!(eval("return range(-1)"), Err(RunScriptError::BadIndex(_))));
        assert_eq!(eval("return len(range(5))").unwrap(), Value::Int(5));
    }

    #[test]
    fn memory_limit_stops_concat_bomb() {
        // The classic 3-line doubling bomb: without `max_memory` this
        // reaches gigabytes long before the fuel budget notices.
        let chunk = compile("let s = \"x\"\nwhile true do s = s .. s end").unwrap();
        let mut vm = Vm::new();
        let limits = VmLimits { max_memory: 64 * 1024, ..VmLimits::default() };
        let err = vm.run(&chunk, &mut NoHost, limits).unwrap_err();
        assert!(matches!(err, RunScriptError::OutOfMemory { limit: 65_536, .. }));
        assert!(vm.last_mem_allocated() > 64 * 1024, "counter crossed the limit");
        assert!(vm.last_fuel_used() > 0 && vm.last_fuel_used() < 1_000, "caught early");
    }

    #[test]
    fn memory_limit_stops_push_bomb() {
        let chunk = compile("let l = []\nwhile true do l = push(l, 1) end").unwrap();
        let mut vm = Vm::new();
        let limits = VmLimits { max_memory: 4 * 1024, ..VmLimits::default() };
        let err = vm.run(&chunk, &mut NoHost, limits).unwrap_err();
        assert!(matches!(err, RunScriptError::OutOfMemory { .. }));
    }

    #[test]
    fn memory_limit_stops_range_bomb() {
        let chunk = compile("return range(1000000)").unwrap();
        let mut vm = Vm::new();
        let limits = VmLimits { max_memory: 1024 * 1024, ..VmLimits::default() };
        let err = vm.run(&chunk, &mut NoHost, limits).unwrap_err();
        assert!(matches!(err, RunScriptError::OutOfMemory { .. }));
    }

    #[test]
    fn memory_accounting_reported_and_deterministic() {
        let chunk = compile("return \"aaaa\" .. \"bbbb\"").unwrap();
        let mut vm = Vm::new();
        let a = vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap();
        let b = vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap();
        assert!(a.mem_allocated > 0);
        assert_eq!(a.mem_allocated, b.mem_allocated);
        assert_eq!(a.mem_allocated, vm.last_mem_allocated());
    }

    #[test]
    fn host_calls_pay_the_fuel_surcharge() {
        let chunk = compile("ping()\nping()").unwrap();
        let run_with = |surcharge: u64| {
            let mut vm = Vm::new();
            let mut host = FnHost::new();
            host.register("ping", |_| Ok(Value::Nil));
            let limits = VmLimits { host_call_fuel: surcharge, ..VmLimits::default() };
            vm.run(&chunk, &mut host, limits).unwrap().fuel_used
        };
        assert_eq!(run_with(100) - run_with(0), 200, "two host calls, 100 extra fuel each");
    }

    #[test]
    fn host_call_surcharge_is_enforced() {
        // Enough fuel for the call instruction but not the surcharge.
        let chunk = compile("ping()").unwrap();
        let mut vm = Vm::new();
        let mut host = FnHost::new();
        host.register("ping", |_| Ok(Value::Nil));
        let limits = VmLimits { fuel: 3, host_call_fuel: 1_000, ..VmLimits::default() };
        assert_eq!(vm.run(&chunk, &mut host, limits).unwrap_err(), RunScriptError::OutOfFuel);
    }

    #[test]
    fn type_mismatch_messages() {
        let err = eval("return 1 + \"a\"").unwrap_err();
        assert!(matches!(err, RunScriptError::TypeMismatch { .. }));
        let err = eval("return -\"a\"").unwrap_err();
        assert!(matches!(err, RunScriptError::TypeMismatch { .. }));
    }
}
