//! Recursive-descent parser for Flua.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::error::{CompileScriptError, SourcePos};
use crate::lexer::{lex, Spanned, Token};

/// Parses a source string into a [`Program`].
///
/// # Errors
///
/// Returns a [`CompileScriptError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// use malsim_script::parser::parse;
///
/// let prog = parse("let x = 1 + 2\nreport(x)")?;
/// assert_eq!(prog.stmts.len(), 2);
/// # Ok::<(), malsim_script::error::CompileScriptError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, CompileScriptError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let stmts = p.block(&[Token::Eof])?;
    p.expect(Token::Eof)?;
    Ok(Program { stmts })
}

/// Maximum combined statement/expression nesting depth.
///
/// The parser is recursive-descent, so source nesting consumes native stack
/// frames; without a cap a few kilobytes of `(((((…` aborts the whole
/// process — which `catch_unwind` in the sweep supervisor cannot contain.
/// The cap also bounds AST depth, keeping the (equally recursive) compiler
/// safe. Each nesting level is counted up to twice (statement/expression
/// entry plus unary chains), so the practical source nesting limit is about
/// half this value — far beyond anything a legitimate scenario writes. The
/// value is sized so a cap-depth parse fits comfortably inside a 2 MiB
/// thread stack even in debug builds (each level costs ~10 native frames
/// through the precedence chain).
const MAX_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    /// Bumps the nesting depth, failing with a typed error at the cap.
    fn enter(&mut self) -> Result<(), CompileScriptError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.err(format!("nesting exceeds depth limit ({MAX_DEPTH})"))
        } else {
            Ok(())
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_pos(&self) -> SourcePos {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CompileScriptError> {
        Err(CompileScriptError { pos: self.peek_pos(), message: message.into() })
    }

    fn expect(&mut self, token: Token) -> Result<(), CompileScriptError> {
        if *self.peek() == token {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {token:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, CompileScriptError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Parses statements until one of `terminators` is the next token
    /// (which is left unconsumed).
    fn block(&mut self, terminators: &[Token]) -> Result<Vec<Stmt>, CompileScriptError> {
        let mut stmts = Vec::new();
        while !terminators.contains(self.peek()) {
            if *self.peek() == Token::Eof {
                return self.err("unexpected end of input inside block");
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, CompileScriptError> {
        self.enter()?;
        let stmt = self.statement_inner();
        self.depth -= 1;
        stmt
    }

    fn statement_inner(&mut self) -> Result<Stmt, CompileScriptError> {
        match self.peek().clone() {
            Token::Let => {
                self.advance();
                let name = self.ident()?;
                self.expect(Token::Assign)?;
                let value = self.expression()?;
                Ok(Stmt::Let { name, value })
            }
            Token::Fn => {
                self.advance();
                let name = self.ident()?;
                self.expect(Token::LParen)?;
                let mut params = Vec::new();
                if *self.peek() != Token::RParen {
                    loop {
                        params.push(self.ident()?);
                        if *self.peek() == Token::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Token::RParen)?;
                let body = self.block(&[Token::End])?;
                self.expect(Token::End)?;
                Ok(Stmt::FnDef { name, params, body })
            }
            Token::If => {
                self.advance();
                let mut arms = Vec::new();
                let cond = self.expression()?;
                self.expect(Token::Then)?;
                let body = self.block(&[Token::Elseif, Token::Else, Token::End])?;
                arms.push((cond, body));
                let mut otherwise = None;
                loop {
                    match self.peek().clone() {
                        Token::Elseif => {
                            self.advance();
                            let c = self.expression()?;
                            self.expect(Token::Then)?;
                            let b = self.block(&[Token::Elseif, Token::Else, Token::End])?;
                            arms.push((c, b));
                        }
                        Token::Else => {
                            self.advance();
                            otherwise = Some(self.block(&[Token::End])?);
                            self.expect(Token::End)?;
                            break;
                        }
                        Token::End => {
                            self.advance();
                            break;
                        }
                        other => return self.err(format!("expected elseif/else/end, found {other:?}")),
                    }
                }
                Ok(Stmt::If { arms, otherwise })
            }
            Token::While => {
                self.advance();
                let cond = self.expression()?;
                self.expect(Token::Do)?;
                let body = self.block(&[Token::End])?;
                self.expect(Token::End)?;
                Ok(Stmt::While { cond, body })
            }
            Token::For => {
                self.advance();
                let name = self.ident()?;
                self.expect(Token::In)?;
                let iterable = self.expression()?;
                self.expect(Token::Do)?;
                let body = self.block(&[Token::End])?;
                self.expect(Token::End)?;
                Ok(Stmt::ForIn { name, iterable, body })
            }
            Token::Break => {
                self.advance();
                Ok(Stmt::Break)
            }
            Token::Return => {
                self.advance();
                // `return` may be bare (followed by a block terminator).
                let value = match self.peek() {
                    Token::End | Token::Else | Token::Elseif | Token::Eof => None,
                    _ => Some(self.expression()?),
                };
                Ok(Stmt::Return(value))
            }
            Token::Ident(name) => {
                // Could be assignment or an expression statement (call).
                if self.tokens[self.pos + 1].token == Token::Assign {
                    self.advance();
                    self.advance();
                    let value = self.expression()?;
                    Ok(Stmt::Assign { name, value })
                } else {
                    let expr = self.expression()?;
                    Ok(Stmt::Expr(expr))
                }
            }
            other => self.err(format!("unexpected token {other:?} at statement start")),
        }
    }

    fn expression(&mut self) -> Result<Expr, CompileScriptError> {
        self.enter()?;
        let expr = self.parse_or();
        self.depth -= 1;
        expr
    }

    fn parse_or(&mut self) -> Result<Expr, CompileScriptError> {
        let mut chain = 0;
        let mut lhs = self.parse_and()?;
        while *self.peek() == Token::Or {
            // Operator chains build a left-leaning AST one level deeper per
            // term without any parser recursion, so each iteration is
            // charged against the same depth budget — otherwise a flat
            // 10k-term line overflows the (recursive) compiler and Drop.
            self.enter()?;
            chain += 1;
            self.advance();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.depth -= chain;
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, CompileScriptError> {
        let mut chain = 0;
        let mut lhs = self.parse_cmp()?;
        while *self.peek() == Token::And {
            self.enter()?;
            chain += 1;
            self.advance();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.depth -= chain;
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, CompileScriptError> {
        let lhs = self.parse_concat()?;
        let op = match self.peek() {
            Token::EqEq => BinOp::Eq,
            Token::NotEq => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.parse_concat()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn parse_concat(&mut self) -> Result<Expr, CompileScriptError> {
        let mut chain = 0;
        let mut lhs = self.parse_additive()?;
        while *self.peek() == Token::Concat {
            self.enter()?;
            chain += 1;
            self.advance();
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary { op: BinOp::Concat, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.depth -= chain;
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, CompileScriptError> {
        let mut chain = 0;
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.enter()?;
            chain += 1;
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.depth -= chain;
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, CompileScriptError> {
        let mut chain = 0;
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.enter()?;
            chain += 1;
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.depth -= chain;
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileScriptError> {
        // Unary chains (`----x`, `not not x`) recurse without passing
        // through `expression`, so they are depth-counted here too.
        self.enter()?;
        let expr = match self.peek() {
            Token::Minus => {
                self.advance();
                self.parse_unary().map(|expr| Expr::Unary { op: UnOp::Neg, expr: Box::new(expr) })
            }
            Token::Not => {
                self.advance();
                self.parse_unary().map(|expr| Expr::Unary { op: UnOp::Not, expr: Box::new(expr) })
            }
            _ => self.parse_postfix(),
        };
        self.depth -= 1;
        expr
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileScriptError> {
        let mut chain = 0;
        let mut expr = self.parse_primary()?;
        while *self.peek() == Token::LBracket {
            self.enter()?;
            chain += 1;
            self.advance();
            let index = self.expression()?;
            self.expect(Token::RBracket)?;
            expr = Expr::Index { target: Box::new(expr), index: Box::new(index) };
        }
        self.depth -= chain;
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileScriptError> {
        let pos = self.peek_pos();
        match self.peek().clone() {
            Token::Nil => {
                self.advance();
                Ok(Expr::Nil)
            }
            Token::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            Token::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            Token::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            Token::Num(v) => {
                self.advance();
                Ok(Expr::Num(v))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            Token::LParen => {
                self.advance();
                let e = self.expression()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::LBracket => {
                self.advance();
                let mut items = Vec::new();
                if *self.peek() != Token::RBracket {
                    loop {
                        items.push(self.expression()?);
                        if *self.peek() == Token::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Token::RBracket)?;
                Ok(Expr::List(items))
            }
            Token::Ident(name) => {
                self.advance();
                if *self.peek() == Token::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    if *self.peek() != Token::RParen {
                        loop {
                            args.push(self.expression()?);
                            if *self.peek() == Token::Comma {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Token::RParen)?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_let_and_assign() {
        let p = parse("let a = 1\na = a + 1").unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert!(matches!(p.stmts[0], Stmt::Let { .. }));
        assert!(matches!(p.stmts[1], Stmt::Assign { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("let x = 1 + 2 * 3").unwrap();
        let Stmt::Let { value, .. } = &p.stmts[0] else { panic!() };
        let Expr::Binary { op: BinOp::Add, rhs, .. } = value else { panic!("got {value:?}") };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_cmp_over_and() {
        let p = parse("let x = a < b and c > d").unwrap();
        let Stmt::Let { value, .. } = &p.stmts[0] else { panic!() };
        assert!(matches!(value, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn parses_if_elseif_else() {
        let p = parse("if a then x = 1 elseif b then x = 2 else x = 3 end").unwrap();
        let Stmt::If { arms, otherwise } = &p.stmts[0] else { panic!() };
        assert_eq!(arms.len(), 2);
        assert!(otherwise.is_some());
    }

    #[test]
    fn parses_while_and_break() {
        let p = parse("while true do break end").unwrap();
        let Stmt::While { body, .. } = &p.stmts[0] else { panic!() };
        assert_eq!(body, &vec![Stmt::Break]);
    }

    #[test]
    fn parses_for_in() {
        let p = parse("for f in files do leak(f) end").unwrap();
        assert!(matches!(&p.stmts[0], Stmt::ForIn { name, .. } if name == "f"));
    }

    #[test]
    fn parses_fn_def_and_call() {
        let p = parse("fn add(a, b) return a + b end\nlet s = add(1, 2)").unwrap();
        let Stmt::FnDef { params, .. } = &p.stmts[0] else { panic!() };
        assert_eq!(params, &vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn parses_bare_return() {
        let p = parse("fn f() return end").unwrap();
        let Stmt::FnDef { body, .. } = &p.stmts[0] else { panic!() };
        assert_eq!(body, &vec![Stmt::Return(None)]);
    }

    #[test]
    fn parses_lists_and_indexing() {
        let p = parse("let l = [1, 2, 3]\nlet x = l[0]").unwrap();
        assert!(matches!(&p.stmts[0], Stmt::Let { value: Expr::List(v), .. } if v.len() == 3));
        assert!(matches!(&p.stmts[1], Stmt::Let { value: Expr::Index { .. }, .. }));
    }

    #[test]
    fn error_on_missing_end() {
        let err = parse("while true do x = 1").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("let = 3").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse(") x").is_err());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_crash() {
        // Parens recurse through expression(); this used to blow the
        // native stack at a few thousand levels.
        let bomb = format!("let x = {}1{}", "(".repeat(5_000), ")".repeat(5_000));
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("depth limit"), "got: {}", err.message);

        // Unary chains recurse through parse_unary() directly.
        let minus_bomb = format!("let x = {}1", "-".repeat(10_000));
        assert!(parse(&minus_bomb).unwrap_err().message.contains("depth limit"));

        // Nested blocks recurse through statement().
        let block_bomb = format!("{}break{}", "while true do ".repeat(5_000), " end".repeat(5_000));
        assert!(parse(&block_bomb).unwrap_err().message.contains("depth limit"));

        // List-literal nesting recurses through expression().
        let list_bomb = format!("let x = {}{}", "[".repeat(5_000), "]".repeat(5_000));
        assert!(parse(&list_bomb).unwrap_err().message.contains("depth limit"));
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let src = format!("let x = {}1{}", "(".repeat(40), ")".repeat(40));
        assert!(parse(&src).is_ok());
        let src = format!("{}break{}", "while true do ".repeat(40), " end".repeat(40));
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn concat_chains() {
        let p = parse("let s = \"a\" .. \"b\" .. \"c\"").unwrap();
        let Stmt::Let { value, .. } = &p.stmts[0] else { panic!() };
        assert!(matches!(value, Expr::Binary { op: BinOp::Concat, .. }));
    }
}
