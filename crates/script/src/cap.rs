//! Capability gating for host functions.
//!
//! A scenario script runs against a [`HostEnv`](crate::vm::HostEnv) that
//! exposes the simulated world — file scans, network dials, USB writes,
//! exfiltration, detonation. Untrusted scripts must not get all of that by
//! default: each script declares the capabilities it needs in a manifest,
//! and [`GatedHost`] checks every sensitive call against the granted set.
//! An ungranted call returns a typed
//! [`RunScriptError::CapabilityDenied`] — never a panic, and never a silent
//! no-op that would skew sweep results.

use std::collections::HashMap;
use std::fmt;

use crate::error::RunScriptError;
use crate::value::Value;
use crate::vm::HostEnv;

/// A privilege a script can be granted over the simulated world.
///
/// The set mirrors what the paper's weapons actually do: Flame scans file
/// systems and exfiltrates, Stuxnet writes USB payloads and detonates,
/// everything beacons. Host functions are mapped to exactly one capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// Resolve domains / open simulated network connections.
    NetDial,
    /// Enumerate and read files on simulated hosts.
    FsScan,
    /// Stage payload files via removable media.
    UsbWrite,
    /// Upload collected data to the C&C side.
    Exfil,
    /// Destructive actions: brick a host, wipe the implant.
    Detonate,
    /// Microphone access (Flame's MICROBE).
    Audio,
    /// Bluetooth discovery and harvesting (BEETLEJUICE).
    Bluetooth,
    /// Passive host reconnaissance (sysinfo, AV probing, screenshots).
    Recon,
}

impl Capability {
    /// Every capability, in declaration order.
    pub const ALL: [Capability; 8] = [
        Capability::NetDial,
        Capability::FsScan,
        Capability::UsbWrite,
        Capability::Exfil,
        Capability::Detonate,
        Capability::Audio,
        Capability::Bluetooth,
        Capability::Recon,
    ];

    /// The stable lower-snake label used in manifests and reports.
    pub fn label(self) -> &'static str {
        match self {
            Capability::NetDial => "net_dial",
            Capability::FsScan => "fs_scan",
            Capability::UsbWrite => "usb_write",
            Capability::Exfil => "exfil",
            Capability::Detonate => "detonate",
            Capability::Audio => "audio",
            Capability::Bluetooth => "bluetooth",
            Capability::Recon => "recon",
        }
    }

    /// Parses a manifest label back to a capability.
    pub fn from_label(label: &str) -> Option<Capability> {
        Capability::ALL.into_iter().find(|c| c.label() == label)
    }

    fn bit(self) -> u16 {
        1 << (Capability::ALL.iter().position(|c| *c == self).expect("listed in ALL") as u16)
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of granted capabilities (a bitset; `Copy`, order-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct CapabilitySet(u16);

impl CapabilitySet {
    /// The empty set — a fully sandboxed script.
    pub const fn none() -> Self {
        CapabilitySet(0)
    }

    /// Every capability — only for trusted, first-party scenario code.
    pub fn all() -> Self {
        Capability::ALL.into_iter().fold(CapabilitySet::none(), CapabilitySet::grant)
    }

    /// Returns the set with `cap` added (builder style).
    #[must_use]
    pub fn grant(self, cap: Capability) -> Self {
        CapabilitySet(self.0 | cap.bit())
    }

    /// Does the set allow `cap`?
    pub fn allows(self, cap: Capability) -> bool {
        self.0 & cap.bit() != 0
    }

    /// True when nothing is granted.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The granted capabilities, in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Capability> {
        Capability::ALL.into_iter().filter(move |c| self.allows(*c))
    }

    /// Parses a whitespace-separated list of labels, e.g. `"fs_scan exfil"`.
    ///
    /// # Errors
    ///
    /// Returns the first unknown label.
    pub fn parse(labels: &str) -> Result<CapabilitySet, String> {
        let mut set = CapabilitySet::none();
        for word in labels.split_whitespace() {
            match Capability::from_label(word) {
                Some(cap) => set = set.grant(cap),
                None => return Err(word.to_owned()),
            }
        }
        Ok(set)
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for cap in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{cap}")?;
        }
        Ok(())
    }
}

impl FromIterator<Capability> for CapabilitySet {
    fn from_iter<T: IntoIterator<Item = Capability>>(iter: T) -> Self {
        iter.into_iter().fold(CapabilitySet::none(), CapabilitySet::grant)
    }
}

/// A [`HostEnv`] wrapper that checks each call against a granted
/// [`CapabilitySet`] before delegating to the inner host.
///
/// Host functions are registered with [`GatedHost::require`]; a call to a
/// registered function without its capability returns
/// [`RunScriptError::CapabilityDenied`]. Unregistered names pass through
/// (the inner host decides whether they exist), so gating composes with
/// builtins and harmless helpers like `log`.
pub struct GatedHost<H> {
    inner: H,
    granted: CapabilitySet,
    required: HashMap<String, Capability>,
}

impl<H> GatedHost<H> {
    /// Wraps `inner`, granting `granted`.
    pub fn new(inner: H, granted: CapabilitySet) -> Self {
        GatedHost { inner, granted, required: HashMap::new() }
    }

    /// Declares that host function `name` requires `cap` (builder style).
    #[must_use]
    pub fn require(mut self, name: impl Into<String>, cap: Capability) -> Self {
        self.required.insert(name.into(), cap);
        self
    }

    /// The capabilities this host was granted.
    pub fn granted(&self) -> CapabilitySet {
        self.granted
    }

    /// The capability `name` requires, if it is gated at all.
    pub fn required_for(&self, name: &str) -> Option<Capability> {
        self.required.get(name).copied()
    }

    /// Consumes the gate, returning the inner host.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: fmt::Debug> fmt::Debug for GatedHost<H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GatedHost")
            .field("granted", &self.granted.to_string())
            .field("gated_fns", &self.required.len())
            .field("inner", &self.inner)
            .finish()
    }
}

impl<H: HostEnv> HostEnv for GatedHost<H> {
    fn call_host(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, RunScriptError> {
        if let Some(&cap) = self.required.get(name) {
            if !self.granted.allows(cap) {
                return Err(RunScriptError::CapabilityDenied { name: name.to_owned(), capability: cap });
            }
        }
        self.inner.call_host(name, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::vm::{FnHost, Vm, VmLimits};

    #[test]
    fn labels_round_trip() {
        for cap in Capability::ALL {
            assert_eq!(Capability::from_label(cap.label()), Some(cap));
        }
        assert_eq!(Capability::from_label("root"), None);
    }

    #[test]
    fn set_grant_allows_and_display() {
        let set = CapabilitySet::none().grant(Capability::Exfil).grant(Capability::FsScan);
        assert!(set.allows(Capability::Exfil));
        assert!(set.allows(Capability::FsScan));
        assert!(!set.allows(Capability::Detonate));
        assert_eq!(set.to_string(), "fs_scan exfil");
        assert!(CapabilitySet::none().is_empty());
        assert!(CapabilitySet::all().allows(Capability::Audio));
    }

    #[test]
    fn parse_accepts_labels_and_rejects_unknown() {
        let set = CapabilitySet::parse("exfil  fs_scan").unwrap();
        assert_eq!(set, CapabilitySet::none().grant(Capability::Exfil).grant(Capability::FsScan));
        assert_eq!(CapabilitySet::parse(""), Ok(CapabilitySet::none()));
        assert_eq!(CapabilitySet::parse("exfil sudo"), Err("sudo".to_owned()));
    }

    #[test]
    fn gated_host_denies_ungranted_and_passes_granted() {
        let mut calls = 0usize;
        {
            let mut inner = FnHost::new();
            inner.register("exfil", |_| Ok(Value::Int(1)));
            inner.register("wipe_self", |_| Ok(Value::Int(2)));
            inner.register("log", |_| {
                Ok(Value::Nil) // ungated helper
            });
            let mut host = GatedHost::new(inner, CapabilitySet::none().grant(Capability::Exfil))
                .require("exfil", Capability::Exfil)
                .require("wipe_self", Capability::Detonate);

            let mut vm = Vm::new();
            let ok = compile("return exfil()").unwrap();
            assert_eq!(vm.run(&ok, &mut host, VmLimits::default()).unwrap().value, Value::Int(1));
            calls += 1;

            let denied = compile("return wipe_self()").unwrap();
            let err = vm.run(&denied, &mut host, VmLimits::default()).unwrap_err();
            assert_eq!(
                err,
                RunScriptError::CapabilityDenied {
                    name: "wipe_self".into(),
                    capability: Capability::Detonate
                }
            );

            let ungated = compile("return log()").unwrap();
            assert_eq!(vm.run(&ungated, &mut host, VmLimits::default()).unwrap().value, Value::Nil);
        }
        assert_eq!(calls, 1);
    }
}
