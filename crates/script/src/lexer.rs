//! Lexer for the Flua language.

use crate::error::{CompileScriptError, SourcePos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // literals
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Num(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Identifier.
    Ident(String),
    // keywords
    /// `let`
    Let,
    /// `fn`
    Fn,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `elseif`
    Elseif,
    /// `while`
    While,
    /// `do`
    Do,
    /// `end`
    End,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `nil`
    Nil,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `for`
    For,
    /// `in`
    In,
    /// `break`
    Break,
    // symbols
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `..` string concatenation
    Concat,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Assign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: SourcePos,
}

/// Lexes a source string into tokens (always ending with [`Token::Eof`]).
///
/// # Errors
///
/// Returns a [`CompileScriptError`] on unterminated strings, malformed
/// numbers, or unexpected characters.
///
/// # Examples
///
/// ```
/// use malsim_script::lexer::{lex, Token};
///
/// let toks = lex("let x = 1 + 2")?;
/// assert_eq!(toks[0].token, Token::Let);
/// assert_eq!(toks.last().unwrap().token, Token::Eof);
/// # Ok::<(), malsim_script::error::CompileScriptError>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileScriptError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! pos {
        () => {
            SourcePos { line, col }
        };
    }
    macro_rules! err {
        ($p:expr, $($arg:tt)*) => {
            return Err(CompileScriptError { pos: $p, message: format!($($arg)*) })
        };
    }
    while i < bytes.len() {
        let c = bytes[i];
        let start = pos!();
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == '.') {
                    if bytes[j] == '.' {
                        // `..` is concat, not part of a number
                        if j + 1 < bytes.len() && bytes[j + 1] == '.' {
                            break;
                        }
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                let token = if is_float {
                    match text.parse::<f64>() {
                        Ok(v) => Token::Num(v),
                        Err(_) => err!(start, "malformed number '{text}'"),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Token::Int(v),
                        Err(_) => err!(start, "integer literal '{text}' out of range"),
                    }
                };
                out.push(Spanned { token, pos: start });
                col += (j - i) as u32;
                i = j;
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                let mut closed = false;
                while j < bytes.len() {
                    match bytes[j] {
                        '"' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        '\\' => {
                            j += 1;
                            if j >= bytes.len() {
                                break;
                            }
                            s.push(match bytes[j] {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => err!(start, "unknown escape '\\{other}'"),
                            });
                            j += 1;
                        }
                        '\n' => err!(start, "unterminated string"),
                        other => {
                            s.push(other);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    err!(start, "unterminated string");
                }
                out.push(Spanned { token: Token::Str(s), pos: start });
                col += (j - i) as u32;
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let word: String = bytes[i..j].iter().collect();
                let token = match word.as_str() {
                    "let" => Token::Let,
                    "fn" => Token::Fn,
                    "if" => Token::If,
                    "then" => Token::Then,
                    "else" => Token::Else,
                    "elseif" => Token::Elseif,
                    "while" => Token::While,
                    "do" => Token::Do,
                    "end" => Token::End,
                    "return" => Token::Return,
                    "true" => Token::True,
                    "false" => Token::False,
                    "nil" => Token::Nil,
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    "for" => Token::For,
                    "in" => Token::In,
                    "break" => Token::Break,
                    _ => Token::Ident(word),
                };
                out.push(Spanned { token, pos: start });
                col += (j - i) as u32;
                i = j;
            }
            _ => {
                // symbols, longest first
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let (token, len) = match two.as_str() {
                    ".." => (Token::Concat, 2),
                    "==" => (Token::EqEq, 2),
                    "!=" => (Token::NotEq, 2),
                    "<=" => (Token::Le, 2),
                    ">=" => (Token::Ge, 2),
                    _ => match c {
                        '+' => (Token::Plus, 1),
                        '-' => (Token::Minus, 1),
                        '*' => (Token::Star, 1),
                        '/' => (Token::Slash, 1),
                        '%' => (Token::Percent, 1),
                        '<' => (Token::Lt, 1),
                        '>' => (Token::Gt, 1),
                        '=' => (Token::Assign, 1),
                        '(' => (Token::LParen, 1),
                        ')' => (Token::RParen, 1),
                        '[' => (Token::LBracket, 1),
                        ']' => (Token::RBracket, 1),
                        ',' => (Token::Comma, 1),
                        other => err!(start, "unexpected character '{other}'"),
                    },
                };
                out.push(Spanned { token, pos: start });
                i += len;
                col += len as u32;
            }
        }
    }
    out.push(Spanned { token: Token::Eof, pos: pos!() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("let x = foo"),
            vec![Token::Let, Token::Ident("x".into()), Token::Assign, Token::Ident("foo".into()), Token::Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![Token::Int(42), Token::Eof]);
        assert_eq!(kinds("3.5"), vec![Token::Num(3.5), Token::Eof]);
        assert_eq!(kinds("1..2"), vec![Token::Int(1), Token::Concat, Token::Int(2), Token::Eof]);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#), vec![Token::Str("a\nb".into()), Token::Eof]);
        assert_eq!(kinds(r#""q\"q""#), vec![Token::Str("q\"q".into()), Token::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("1 # comment\n2"), vec![Token::Int(1), Token::Int(2), Token::Eof]);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a == b != c <= d >= e"),
            vec![
                Token::Ident("a".into()),
                Token::EqEq,
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Ident("c".into()),
                Token::Le,
                Token::Ident("d".into()),
                Token::Ge,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, SourcePos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, SourcePos { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_char_errors() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn integer_overflow_errors() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
