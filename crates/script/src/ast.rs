//! Abstract syntax tree for Flua.

use crate::error::SourcePos;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `..`
    Concat,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `not`
    Not,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `nil`
    Nil,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// List literal `[a, b, c]`.
    List(Vec<Expr>),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call `name(args…)`.
    Call {
        /// Callee name (script function or host function).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Call-site position (for error reporting).
        pos: SourcePos,
    },
    /// Indexing `expr[expr]`.
    Index {
        /// The list expression.
        target: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr` — declares in the current scope.
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `name = expr` — assigns to an existing variable (or creates a global).
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `if cond then … [elseif …]* [else …] end`.
    If {
        /// `(condition, body)` arms in order: the `if` and any `elseif`s.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body, if present.
        otherwise: Option<Vec<Stmt>>,
    },
    /// `while cond do … end`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for name in list do … end` — iterates a list's elements.
    ForIn {
        /// Loop variable.
        name: String,
        /// Expression yielding a list.
        iterable: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break` out of the innermost loop.
    Break,
    /// `return [expr]`.
    Return(Option<Expr>),
    /// An expression evaluated for side effects (function calls).
    Expr(Expr),
    /// `fn name(params) … end`.
    FnDef {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// A whole program: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}
