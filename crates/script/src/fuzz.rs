//! Deterministic generator of hostile Flua scripts for scenario-space
//! fuzzing.
//!
//! The containment layer's claim is that *no* script — however buggy or
//! malicious — can panic, stall, or exhaust the harness; the worst it can do
//! is fail with a typed [`RunScriptError`](crate::error::RunScriptError).
//! This module mass-produces the prosecution's evidence: seeded,
//! syntactically plausible scripts biased toward the known attack shapes
//! (infinite loops, memory bombs, deep nesting, runaway recursion, forbidden
//! capabilities, erroring host calls) plus outright garbage text.
//!
//! Everything is a pure function of the seed — no wall clock, no OS RNG —
//! so a failing seed from CI reproduces locally byte-for-byte. The crate has
//! no dependencies, so the generator carries its own tiny splitmix64 instead
//! of the workspace `SimRng` (same determinism contract).

/// A tiny deterministic RNG (splitmix64). Not cryptographic; only used to
/// derive fuzz scripts from a seed.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Host functions the generated scripts call: a blend of the gated scenario
/// API (some of which a sandboxed run will deny), harmless helpers, and
/// names nothing defines.
const HOST_CALLS: &[&str] = &[
    "hosts()",
    "host_count()",
    "log(\"probe\")",
    "scan_files(\"office-0\")",
    "net_dial(\"cc.example.net\")",
    "usb_write(\"office-0\", \"payload.tmp\", 4096)",
    "exfil(\"office-0\", \"plans.dwg\")",
    "detonate(\"office-0\")",
    "totally_undefined_fn(1, 2)",
    "fail_always()",
];

/// Leaf expressions.
const ATOMS: &[&str] =
    &["0", "1", "42", "-7", "3.5", "\"docx\"", "\"\"", "nil", "true", "false", "[1, 2, 3]", "[]"];

/// Binary operators (including type-error bait like string arithmetic).
const BINOPS: &[&str] = &["+", "-", "*", "/", "%", "..", "==", "!=", "<", "and", "or"];

fn expr(rng: &mut FuzzRng, depth: u32) -> String {
    if depth == 0 || rng.chance(40) {
        return (*rng.pick(ATOMS)).to_owned();
    }
    match rng.below(5) {
        0 => format!("({} {} {})", expr(rng, depth - 1), rng.pick(BINOPS), expr(rng, depth - 1)),
        1 => format!("-{}", expr(rng, depth - 1)),
        2 => format!("len({})", expr(rng, depth - 1)),
        3 => format!("str({})", expr(rng, depth - 1)),
        _ => (*rng.pick(HOST_CALLS)).to_owned(),
    }
}

fn statements(rng: &mut FuzzRng, count: u64, depth: u32) -> String {
    let mut out = String::new();
    for i in 0..count {
        let line = match rng.below(7) {
            0 => format!("let v{i} = {}", expr(rng, depth)),
            1 => format!("v{i} = {}", expr(rng, depth)),
            2 => format!("if {} then let t{i} = {} end", expr(rng, depth.min(1)), expr(rng, depth.min(1))),
            3 => format!("for x{i} in range({}) do let u{i} = x{i} + 1 end", rng.below(20)),
            4 => (*rng.pick(HOST_CALLS)).to_owned(),
            5 => format!("let s{i} = {} .. {}", expr(rng, 1), expr(rng, 1)),
            _ => format!("let l{i} = push([], {})", expr(rng, 1)),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The attack families the generator is biased toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostileShape {
    /// `while true do … end` — only fuel can stop it.
    InfiniteLoop,
    /// Doubling string concat — only the memory budget can stop it.
    ConcatBomb,
    /// Unbounded `push` growth.
    PushBomb,
    /// Large `range` allocations in a loop.
    RangeBomb,
    /// Deeply nested source — must die in the parser, not the native stack.
    DeepNesting,
    /// Unbounded script recursion — must hit the frame limit.
    DeepRecursion,
    /// Calls the gated API without the capability (when sandboxed).
    ForbiddenCall,
    /// Random statement soup: type errors, undefined names, host errors.
    StatementSoup,
    /// Random bytes that usually fail to lex/parse at all.
    Garbage,
}

impl HostileShape {
    /// All shapes, in declaration order.
    pub const ALL: [HostileShape; 9] = [
        HostileShape::InfiniteLoop,
        HostileShape::ConcatBomb,
        HostileShape::PushBomb,
        HostileShape::RangeBomb,
        HostileShape::DeepNesting,
        HostileShape::DeepRecursion,
        HostileShape::ForbiddenCall,
        HostileShape::StatementSoup,
        HostileShape::Garbage,
    ];

    /// The shape seed `seed` generates (uniform over [`HostileShape::ALL`]).
    pub fn for_seed(seed: u64) -> HostileShape {
        let mut rng = FuzzRng::new(seed);
        *rng.pick(&HostileShape::ALL)
    }
}

/// Generates one hostile script from a seed. Pure: the same seed always
/// yields the same text.
pub fn hostile_script(seed: u64) -> String {
    let mut rng = FuzzRng::new(seed);
    let shape = *rng.pick(&HostileShape::ALL);
    let preamble_len = rng.below(4);
    let preamble = statements(&mut rng, preamble_len, 2);
    let payload = match shape {
        HostileShape::InfiniteLoop => "let n = 0\nwhile true do n = n + 1 end\nreturn n".to_owned(),
        HostileShape::ConcatBomb => {
            "let s = \"seed\"\nwhile true do s = s .. s end\nreturn len(s)".to_owned()
        }
        HostileShape::PushBomb => {
            "let l = [0]\nwhile true do l = push(l, len(l)) end\nreturn len(l)".to_owned()
        }
        HostileShape::RangeBomb => {
            "let total = 0\nwhile true do total = total + len(range(1000000)) end".to_owned()
        }
        HostileShape::DeepNesting => {
            let n = 300 + rng.below(5_000) as usize;
            match rng.below(3) {
                0 => format!("let x = {}1{}", "(".repeat(n), ")".repeat(n)),
                1 => format!("let x = {}1", "-".repeat(2 * n)),
                _ => format!("{}break{}", "while true do ".repeat(n), " end".repeat(n)),
            }
        }
        HostileShape::DeepRecursion => "fn f(n) return f(n + 1) end\nreturn f(0)".to_owned(),
        HostileShape::ForbiddenCall => {
            let call = rng.pick(&["detonate(\"office-0\")", "usb_write(\"office-0\", \"x\", 1)"]);
            format!("let before = host_count()\n{call}\nreturn before")
        }
        HostileShape::StatementSoup => {
            let count = 5 + rng.below(15);
            statements(&mut rng, count, 3)
        }
        HostileShape::Garbage => {
            let len = rng.below(200) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                // Printable ASCII plus newlines: exercises the lexer's
                // error paths (unterminated strings, stray symbols).
                let c = match rng.below(20) {
                    0 => '\n',
                    1 => '"',
                    _ => char::from(32 + rng.below(95) as u8),
                };
                s.push(c);
            }
            s
        }
    };
    format!("{preamble}{payload}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::vm::{NoHost, Vm, VmLimits};

    #[test]
    fn generator_is_deterministic() {
        for seed in [0, 1, 7, 0xDEAD_BEEF] {
            assert_eq!(hostile_script(seed), hostile_script(seed));
        }
        assert_ne!(hostile_script(1), hostile_script(2));
    }

    #[test]
    fn all_shapes_appear_over_a_seed_range() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200 {
            seen.insert(format!("{:?}", HostileShape::for_seed(seed)));
        }
        assert_eq!(seen.len(), HostileShape::ALL.len(), "seen: {seen:?}");
    }

    #[test]
    fn sandbox_survives_a_seed_sweep_without_host() {
        // A quick in-crate smoke pass (the full 2k-script harness with the
        // world host lives in the core crate's script_sandbox test): every
        // generated script either compiles or fails typed, and every run
        // ends in a value or a typed fault within the limits.
        let limits = VmLimits { fuel: 50_000, max_memory: 256 * 1024, ..VmLimits::default() };
        for seed in 0..300 {
            let src = hostile_script(seed);
            if let Ok(chunk) = compile(&src) {
                let mut vm = Vm::new();
                let _ = vm.run(&chunk, &mut NoHost, limits);
            }
        }
    }
}
