//! Bytecode compiler: AST → [`Chunk`]s.

use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::error::{CompileScriptError, SourcePos};
use crate::value::Value;

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push `nil`.
    Nil,
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Push the value of variable `names[i]`.
    Load(u16),
    /// Pop into existing variable `names[i]` (or create a global).
    Store(u16),
    /// Pop and declare `names[i]` in the current frame.
    Declare(u16),
    /// Pop `n` values, push a list of them (in pushed order).
    MakeList(u16),
    /// Arithmetic/logic: pop two, push one.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Modulo.
    Mod,
    /// String concatenation (stringifies operands).
    Concat,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Pop index and list, push element.
    Index,
    /// Unconditional jump to absolute instruction index.
    Jump(u32),
    /// Pop; jump if falsy.
    JumpIfFalse(u32),
    /// Peek; jump if falsy, else pop (for `and`).
    JumpIfFalseKeep(u32),
    /// Peek; jump if truthy, else pop (for `or`).
    JumpIfTrueKeep(u32),
    /// Call function `names[i]` with `argc` stack arguments.
    Call {
        /// Name-table index of the callee.
        name: u16,
        /// Argument count.
        argc: u8,
    },
    /// Return the top of stack from the current function.
    Return,
    /// Return `nil` from the current function.
    ReturnNil,
    /// Discard the top of stack.
    Pop,
}

/// A compiled function body.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncProto {
    /// Parameter names (bound as frame locals on call).
    pub params: Vec<String>,
    /// Body code.
    pub code: Vec<Op>,
}

/// A compiled script: top-level code plus named functions, with shared
/// constant and name tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Top-level code.
    pub code: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Name table (variables and callees).
    pub names: Vec<String>,
    /// Script-defined functions by name.
    pub functions: HashMap<String, Rc<FuncProto>>,
}

impl Chunk {
    /// Looks up a name-table entry.
    pub fn name(&self, i: u16) -> &str {
        &self.names[i as usize]
    }
}

/// Compiles source text to a [`Chunk`].
///
/// # Errors
///
/// Returns the first syntax or codegen error (e.g. `break` outside a loop,
/// nested function definitions, or too many constants).
///
/// # Examples
///
/// ```
/// use malsim_script::compiler::compile;
///
/// let chunk = compile("let x = 1 + 2")?;
/// assert!(!chunk.code.is_empty());
/// # Ok::<(), malsim_script::error::CompileScriptError>(())
/// ```
pub fn compile(source: &str) -> Result<Chunk, CompileScriptError> {
    let program = crate::parser::parse(source)?;
    compile_program(&program)
}

/// Compiles an already-parsed [`Program`].
///
/// # Errors
///
/// As for [`compile`], minus syntax errors.
pub fn compile_program(program: &Program) -> Result<Chunk, CompileScriptError> {
    let mut c = Compiler::default();
    // First pass: hoist function definitions so calls can precede them.
    for stmt in &program.stmts {
        if let Stmt::FnDef { name, params, body } = stmt {
            let mut code = Vec::new();
            c.in_function = true;
            c.block(body, &mut code)?;
            c.in_function = false;
            code.push(Op::ReturnNil);
            let proto = Rc::new(FuncProto { params: params.clone(), code });
            if c.functions.insert(name.clone(), proto).is_some() {
                return Err(CompileScriptError {
                    pos: SourcePos { line: 1, col: 1 },
                    message: format!("function '{name}' defined twice"),
                });
            }
        }
    }
    let mut code = Vec::new();
    for stmt in &program.stmts {
        if !matches!(stmt, Stmt::FnDef { .. }) {
            c.statement(stmt, &mut code)?;
        }
    }
    code.push(Op::ReturnNil);
    Ok(Chunk { code, consts: c.consts, names: c.names, functions: c.functions })
}

#[derive(Default)]
struct Compiler {
    consts: Vec<Value>,
    names: Vec<String>,
    name_index: HashMap<String, u16>,
    functions: HashMap<String, Rc<FuncProto>>,
    in_function: bool,
    /// Jump-patch sites for `break` in the innermost loop.
    break_sites: Vec<Vec<usize>>,
}

impl Compiler {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, CompileScriptError> {
        Err(CompileScriptError { pos: SourcePos { line: 0, col: 0 }, message: message.into() })
    }

    fn const_idx(&mut self, v: Value) -> Result<u16, CompileScriptError> {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return Ok(i as u16);
        }
        if self.consts.len() >= u16::MAX as usize {
            return self.err("too many constants");
        }
        self.consts.push(v);
        Ok((self.consts.len() - 1) as u16)
    }

    fn name_idx(&mut self, name: &str) -> Result<u16, CompileScriptError> {
        if let Some(&i) = self.name_index.get(name) {
            return Ok(i);
        }
        if self.names.len() >= u16::MAX as usize {
            return self.err("too many names");
        }
        self.names.push(name.to_owned());
        let i = (self.names.len() - 1) as u16;
        self.name_index.insert(name.to_owned(), i);
        Ok(i)
    }

    fn block(&mut self, stmts: &[Stmt], code: &mut Vec<Op>) -> Result<(), CompileScriptError> {
        for s in stmts {
            self.statement(s, code)?;
        }
        Ok(())
    }

    fn statement(&mut self, stmt: &Stmt, code: &mut Vec<Op>) -> Result<(), CompileScriptError> {
        match stmt {
            Stmt::Let { name, value } => {
                self.expression(value, code)?;
                let i = self.name_idx(name)?;
                code.push(Op::Declare(i));
            }
            Stmt::Assign { name, value } => {
                self.expression(value, code)?;
                let i = self.name_idx(name)?;
                code.push(Op::Store(i));
            }
            Stmt::Expr(e) => {
                self.expression(e, code)?;
                code.push(Op::Pop);
            }
            Stmt::Return(value) => match value {
                Some(e) => {
                    self.expression(e, code)?;
                    code.push(Op::Return);
                }
                None => code.push(Op::ReturnNil),
            },
            Stmt::Break => {
                let Some(sites) = self.break_sites.last_mut() else {
                    return self.err("'break' outside a loop");
                };
                sites.push(code.len());
                code.push(Op::Jump(u32::MAX)); // patched at loop end
            }
            Stmt::If { arms, otherwise } => {
                // Chain: each arm tests, jumps past its body to the next test.
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    self.expression(cond, code)?;
                    let skip = code.len();
                    code.push(Op::JumpIfFalse(u32::MAX));
                    self.block(body, code)?;
                    end_jumps.push(code.len());
                    code.push(Op::Jump(u32::MAX));
                    let here = code.len() as u32;
                    patch(code, skip, here);
                }
                if let Some(body) = otherwise {
                    self.block(body, code)?;
                }
                let end = code.len() as u32;
                for j in end_jumps {
                    patch(code, j, end);
                }
            }
            Stmt::While { cond, body } => {
                let top = code.len() as u32;
                self.expression(cond, code)?;
                let exit = code.len();
                code.push(Op::JumpIfFalse(u32::MAX));
                self.break_sites.push(Vec::new());
                self.block(body, code)?;
                code.push(Op::Jump(top));
                let end = code.len() as u32;
                patch(code, exit, end);
                for site in self.break_sites.pop().expect("pushed above") {
                    patch(code, site, end);
                }
            }
            Stmt::ForIn { name, iterable, body } => {
                // Desugar to: let $list = iterable; let $i = 0;
                // while $i < len($list) do let name = $list[$i]; body; $i = $i + 1 end
                let depth = self.break_sites.len();
                let list_var = self.name_idx(&format!("$list{depth}"))?;
                let idx_var = self.name_idx(&format!("$idx{depth}"))?;
                let len_fn = self.name_idx("len")?;
                let name_var = self.name_idx(name)?;
                let zero = self.const_idx(Value::Int(0))?;
                let one = self.const_idx(Value::Int(1))?;
                self.expression(iterable, code)?;
                code.push(Op::Declare(list_var));
                code.push(Op::Const(zero));
                code.push(Op::Declare(idx_var));
                let top = code.len() as u32;
                code.push(Op::Load(idx_var));
                code.push(Op::Load(list_var));
                code.push(Op::Call { name: len_fn, argc: 1 });
                code.push(Op::Lt);
                let exit = code.len();
                code.push(Op::JumpIfFalse(u32::MAX));
                code.push(Op::Load(list_var));
                code.push(Op::Load(idx_var));
                code.push(Op::Index);
                code.push(Op::Declare(name_var));
                self.break_sites.push(Vec::new());
                self.block(body, code)?;
                code.push(Op::Load(idx_var));
                code.push(Op::Const(one));
                code.push(Op::Add);
                code.push(Op::Store(idx_var));
                code.push(Op::Jump(top));
                let end = code.len() as u32;
                patch(code, exit, end);
                for site in self.break_sites.pop().expect("pushed above") {
                    patch(code, site, end);
                }
            }
            Stmt::FnDef { name, .. } => {
                if self.in_function {
                    return self.err(format!("nested function '{name}' not supported"));
                }
                // Hoisted in compile_program; nothing to emit here.
            }
        }
        Ok(())
    }

    fn expression(&mut self, expr: &Expr, code: &mut Vec<Op>) -> Result<(), CompileScriptError> {
        match expr {
            Expr::Nil => code.push(Op::Nil),
            Expr::Bool(true) => code.push(Op::True),
            Expr::Bool(false) => code.push(Op::False),
            Expr::Int(v) => {
                let i = self.const_idx(Value::Int(*v))?;
                code.push(Op::Const(i));
            }
            Expr::Num(v) => {
                let i = self.const_idx(Value::Num(*v))?;
                code.push(Op::Const(i));
            }
            Expr::Str(s) => {
                let i = self.const_idx(Value::str(s))?;
                code.push(Op::Const(i));
            }
            Expr::Var(name) => {
                let i = self.name_idx(name)?;
                code.push(Op::Load(i));
            }
            Expr::List(items) => {
                if items.len() > u16::MAX as usize {
                    return self.err("list literal too long");
                }
                for item in items {
                    self.expression(item, code)?;
                }
                code.push(Op::MakeList(items.len() as u16));
            }
            Expr::Unary { op, expr } => {
                self.expression(expr, code)?;
                code.push(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                self.expression(lhs, code)?;
                let j = code.len();
                code.push(Op::JumpIfFalseKeep(u32::MAX));
                self.expression(rhs, code)?;
                let here = code.len() as u32;
                patch(code, j, here);
            }
            Expr::Binary { op: BinOp::Or, lhs, rhs } => {
                self.expression(lhs, code)?;
                let j = code.len();
                code.push(Op::JumpIfTrueKeep(u32::MAX));
                self.expression(rhs, code)?;
                let here = code.len() as u32;
                patch(code, j, here);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.expression(lhs, code)?;
                self.expression(rhs, code)?;
                code.push(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Concat => Op::Concat,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
            }
            Expr::Call { name, args, .. } => {
                if args.len() > u8::MAX as usize {
                    return self.err("too many call arguments");
                }
                for a in args {
                    self.expression(a, code)?;
                }
                let i = self.name_idx(name)?;
                code.push(Op::Call { name: i, argc: args.len() as u8 });
            }
            Expr::Index { target, index } => {
                self.expression(target, code)?;
                self.expression(index, code)?;
                code.push(Op::Index);
            }
        }
        Ok(())
    }
}

fn patch(code: &mut [Op], site: usize, target: u32) {
    match &mut code[site] {
        Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfFalseKeep(t) | Op::JumpIfTrueKeep(t) => {
            *t = target;
        }
        other => panic!("patch target {site} is not a jump: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_simple_program() {
        let chunk = compile("let x = 1 + 2").unwrap();
        assert!(chunk.code.contains(&Op::Add));
        assert!(chunk.code.iter().any(|op| matches!(op, Op::Declare(_))));
    }

    #[test]
    fn constants_are_deduplicated() {
        let chunk = compile("let a = 5\nlet b = 5\nlet c = 5").unwrap();
        assert_eq!(chunk.consts.iter().filter(|v| **v == Value::Int(5)).count(), 1);
    }

    #[test]
    fn functions_are_hoisted() {
        let chunk = compile("let y = f(1)\nfn f(x) return x end").unwrap();
        assert!(chunk.functions.contains_key("f"));
    }

    #[test]
    fn duplicate_function_rejected() {
        let err = compile("fn f() end\nfn f() end").unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn nested_function_rejected() {
        // Nested fn defs parse as statements inside the body; codegen rejects.
        let err = compile("fn outer() fn inner() end end").unwrap_err();
        assert!(err.message.contains("nested"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = compile("break").unwrap_err();
        assert!(err.message.contains("break"));
    }

    #[test]
    fn jumps_are_patched() {
        let chunk = compile("while true do break end").unwrap();
        for op in &chunk.code {
            if let Op::Jump(t) | Op::JumpIfFalse(t) = op {
                assert_ne!(*t, u32::MAX, "unpatched jump in {:?}", chunk.code);
                assert!((*t as usize) <= chunk.code.len());
            }
        }
    }

    #[test]
    fn short_circuit_ops_emitted() {
        let chunk = compile("let x = a and b").unwrap();
        assert!(chunk.code.iter().any(|op| matches!(op, Op::JumpIfFalseKeep(_))));
        let chunk = compile("let x = a or b").unwrap();
        assert!(chunk.code.iter().any(|op| matches!(op, Op::JumpIfTrueKeep(_))));
    }
}
