//! # malsim-script
//!
//! "Flua" — a small, embeddable scripting language with a bytecode VM, built
//! for the `malsim` simulation workspace.
//!
//! The paper singles out Flame's most unusual design property: large parts of
//! its logic shipped as Lua scripts running on an embedded interpreter, so
//! the operators could push updated modules from the C&C at any time. To
//! model that faithfully, `malsim`'s Flame modules are *actual scripts*
//! executed by this VM, and "module updates" replace the script text at
//! runtime.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`compiler`] → [`vm`].
//!
//! Language summary: `let`/assignment, `if`/`elseif`/`else`, `while`,
//! `for … in list`, `break`, first-class-ish named functions (`fn`),
//! integers/floats/strings/bools/`nil`/lists, short-circuit `and`/`or`,
//! string concat `..`, comments with `#`. Builtins: `len`, `str`, `push`,
//! `contains`, `range`. Everything else resolves to host functions supplied
//! through [`vm::HostEnv`] — that is the *only* way a script can touch the
//! simulated world.
//!
//! Execution is deterministic and budgeted ([`vm::VmLimits`]): fuel per
//! instruction (with a surcharge on host calls), a memory cap on string/list
//! allocation, and a parser nesting limit — a hostile script cannot stall,
//! OOM, or crash the simulation; the worst it gets is a typed
//! [`error::RunScriptError`]. Sensitive host functions can additionally be
//! gated behind per-script capabilities ([`cap::GatedHost`]), and
//! [`fuzz::hostile_script`] mass-produces adversarial scripts to prove the
//! sandbox holds.
//!
//! # Examples
//!
//! ```
//! use malsim_script::prelude::*;
//!
//! // A miniature "file scanner" module in Flua.
//! let src = r#"
//!     let interesting = []
//!     for f in list_files() do
//!         if contains(f, ".docx") or contains(f, ".dwg") then
//!             interesting = push(interesting, f)
//!         end
//!     end
//!     return interesting
//! "#;
//! let chunk = compile(src)?;
//! let mut vm = Vm::new();
//! let mut host = FnHost::new();
//! host.register("list_files", |_args| {
//!     Ok(Value::list(vec![
//!         Value::str("notes.txt"),
//!         Value::str("design.dwg"),
//!         Value::str("plan.docx"),
//!     ]))
//! });
//! let out = vm.run(&chunk, &mut host, VmLimits::default()).unwrap();
//! assert_eq!(out.value.as_list().unwrap().len(), 2);
//! # Ok::<(), malsim_script::error::CompileScriptError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cap;
pub mod compiler;
pub mod error;
pub mod fuzz;
pub mod lexer;
pub mod parser;
pub mod value;
pub mod vm;

/// Commonly used items.
pub mod prelude {
    pub use crate::cap::{Capability, CapabilitySet, GatedHost};
    pub use crate::compiler::{compile, Chunk};
    pub use crate::error::{CompileScriptError, RunScriptError};
    pub use crate::value::Value;
    pub use crate::vm::{FnHost, HostEnv, NoHost, RunOutcome, Vm, VmLimits};
}
