//! Errors for compilation and execution of Flua scripts.

use std::error::Error;
use std::fmt;

/// Where in the source an error occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourcePos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compile-time error (lexing, parsing, or code generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileScriptError {
    /// Position of the offending token.
    pub pos: SourcePos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CompileScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.pos, self.message)
    }
}

impl Error for CompileScriptError {}

/// A runtime error raised by the VM or a host function.
#[derive(Debug, Clone, PartialEq)]
pub enum RunScriptError {
    /// An operation was applied to incompatible value types.
    TypeMismatch {
        /// The operation, e.g. `"+"`.
        op: String,
        /// Description of what was found.
        found: String,
    },
    /// A name was read before any assignment.
    UndefinedVariable(String),
    /// A function name was called that neither the script nor the host
    /// defines.
    UndefinedFunction(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        /// Function name.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Call-site argument count.
        got: usize,
    },
    /// Division or modulo by zero.
    DivisionByZero,
    /// List index out of range or not an integer.
    BadIndex(String),
    /// The fuel budget ran out — guards against runaway scripts pushed from
    /// a C&C server.
    OutOfFuel,
    /// Value stack exceeded its limit (runaway recursion).
    StackOverflow,
    /// The memory budget ran out — guards against memory bombs
    /// (`s = s .. s` doubling loops, unbounded `push`).
    OutOfMemory {
        /// Bytes the script had allocated when it crossed the limit.
        used: usize,
        /// The configured budget ([`crate::vm::VmLimits::max_memory`]).
        limit: usize,
    },
    /// A gated host call required a capability the script's manifest does
    /// not grant.
    CapabilityDenied {
        /// The host function that was called.
        name: String,
        /// The missing capability.
        capability: crate::cap::Capability,
    },
    /// A host function reported an error.
    Host(String),
}

impl fmt::Display for RunScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunScriptError::TypeMismatch { op, found } => {
                write!(f, "type mismatch for '{op}': {found}")
            }
            RunScriptError::UndefinedVariable(n) => write!(f, "undefined variable '{n}'"),
            RunScriptError::UndefinedFunction(n) => write!(f, "undefined function '{n}'"),
            RunScriptError::ArityMismatch { name, expected, got } => {
                write!(f, "function '{name}' expects {expected} args, got {got}")
            }
            RunScriptError::DivisionByZero => write!(f, "division by zero"),
            RunScriptError::BadIndex(m) => write!(f, "bad index: {m}"),
            RunScriptError::OutOfFuel => write!(f, "script exceeded its fuel budget"),
            RunScriptError::StackOverflow => write!(f, "script stack overflow"),
            RunScriptError::OutOfMemory { used, limit } => {
                write!(f, "script exceeded its memory budget ({used} > {limit} bytes)")
            }
            RunScriptError::CapabilityDenied { name, capability } => {
                write!(f, "capability denied: '{name}' requires {capability}")
            }
            RunScriptError::Host(m) => write!(f, "host error: {m}"),
        }
    }
}

impl Error for RunScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_compile_error() {
        let e = CompileScriptError { pos: SourcePos { line: 3, col: 7 }, message: "unexpected token".into() };
        assert_eq!(e.to_string(), "compile error at 3:7: unexpected token");
    }

    #[test]
    fn display_run_errors() {
        assert!(RunScriptError::OutOfFuel.to_string().contains("fuel"));
        assert!(RunScriptError::UndefinedFunction("f".into()).to_string().contains("'f'"));
        assert!(RunScriptError::ArityMismatch { name: "g".into(), expected: 2, got: 3 }
            .to_string()
            .contains("expects 2"));
        assert_eq!(
            RunScriptError::OutOfMemory { used: 2048, limit: 1024 }.to_string(),
            "script exceeded its memory budget (2048 > 1024 bytes)"
        );
        assert_eq!(
            RunScriptError::CapabilityDenied {
                name: "wipe_self".into(),
                capability: crate::cap::Capability::Detonate,
            }
            .to_string(),
            "capability denied: 'wipe_self' requires detonate"
        );
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>(_: E) {}
        assert_err(RunScriptError::DivisionByZero);
        assert_err(CompileScriptError { pos: SourcePos { line: 1, col: 1 }, message: String::new() });
    }
}
