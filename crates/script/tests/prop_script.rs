//! Property tests for Flua: compilation never panics, evaluation is
//! deterministic, arithmetic matches a reference evaluator, and fuel
//! monotonicity holds.

use malsim_script::compiler::compile;
use malsim_script::value::Value;
use malsim_script::vm::{NoHost, Vm, VmLimits};
use proptest::prelude::*;

/// A tiny generator of arithmetic expressions with a reference evaluation.
#[derive(Debug, Clone)]
enum ArithExpr {
    Lit(i32),
    Add(Box<ArithExpr>, Box<ArithExpr>),
    Sub(Box<ArithExpr>, Box<ArithExpr>),
    Mul(Box<ArithExpr>, Box<ArithExpr>),
}

impl ArithExpr {
    fn to_source(&self) -> String {
        match self {
            ArithExpr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(i64::from(*v)))
                } else {
                    v.to_string()
                }
            }
            ArithExpr::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            ArithExpr::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            ArithExpr::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            ArithExpr::Lit(v) => i64::from(*v),
            ArithExpr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            ArithExpr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            ArithExpr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = ArithExpr> {
    let leaf = (-1000i32..1000).prop_map(ArithExpr::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ArithExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ArithExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| ArithExpr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #[test]
    fn compile_never_panics_on_random_text(src in "[ -~\\n]{0,200}") {
        let _ = compile(&src);
    }

    #[test]
    fn arithmetic_matches_reference(expr in arith_strategy()) {
        // Values stay small enough (leafs < 1000, depth ≤ 4) that i64
        // arithmetic cannot overflow, so Int results are exact.
        let src = format!("return {}", expr.to_source());
        let chunk = compile(&src).unwrap();
        let mut vm = Vm::new();
        let out = vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap();
        prop_assert_eq!(out.value, Value::Int(expr.eval()));
    }

    #[test]
    fn evaluation_is_deterministic(expr in arith_strategy()) {
        let src = format!("let x = {}\nreturn x * 2 - x", expr.to_source());
        let chunk = compile(&src).unwrap();
        let mut vm1 = Vm::new();
        let mut vm2 = Vm::new();
        let a = vm1.run(&chunk, &mut NoHost, VmLimits::default()).unwrap();
        let b = vm2.run(&chunk, &mut NoHost, VmLimits::default()).unwrap();
        prop_assert_eq!(a.value, b.value);
        prop_assert_eq!(a.fuel_used, b.fuel_used);
    }

    #[test]
    fn fuel_use_is_independent_of_budget(expr in arith_strategy(), extra in 0u64..10_000) {
        let src = format!("return {}", expr.to_source());
        let chunk = compile(&src).unwrap();
        let mut vm = Vm::new();
        let tight = vm.run(&chunk, &mut NoHost, VmLimits { fuel: 100_000, ..VmLimits::default() }).unwrap();
        let loose = vm
            .run(&chunk, &mut NoHost, VmLimits { fuel: 100_000 + extra, ..VmLimits::default() })
            .unwrap();
        prop_assert_eq!(tight.fuel_used, loose.fuel_used);
    }

    #[test]
    fn loops_always_terminate_under_fuel(n in 0i64..100, fuel in 1u64..5_000) {
        let src = format!("let t = 0\nfor i in range({n}) do t = t + i end\nreturn t");
        let chunk = compile(&src).unwrap();
        let mut vm = Vm::new();
        // Either completes with the right sum or runs out of fuel; never hangs.
        match vm.run(&chunk, &mut NoHost, VmLimits { fuel, ..VmLimits::default() }) {
            Ok(out) => prop_assert_eq!(out.value, Value::Int(n * (n - 1) / 2)),
            Err(e) => prop_assert_eq!(e, malsim_script::error::RunScriptError::OutOfFuel),
        }
    }

    #[test]
    fn string_concat_matches_format(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let src = format!("return \"{a}\" .. \"{b}\"");
        let chunk = compile(&src).unwrap();
        let mut vm = Vm::new();
        let out = vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap();
        prop_assert_eq!(out.value, Value::str(format!("{a}{b}")));
    }

    // --- pathological inputs: the compiler must fail typed, never panic ---

    #[test]
    fn deeply_nested_parens_fail_typed(depth in 200usize..4_000) {
        let src = format!("return {}1{}", "(".repeat(depth), ")".repeat(depth));
        let err = compile(&src).unwrap_err();
        prop_assert!(err.message.contains("depth limit"), "got: {}", err.message);
    }

    #[test]
    fn deeply_nested_blocks_fail_typed(depth in 200usize..2_000) {
        let src = format!("{}break{}", "while true do ".repeat(depth), " end".repeat(depth));
        let err = compile(&src).unwrap_err();
        prop_assert!(err.message.contains("depth limit"), "got: {}", err.message);
    }

    #[test]
    fn unary_chains_fail_typed(depth in 400usize..20_000) {
        let src = format!("return {}1", "-".repeat(depth));
        let err = compile(&src).unwrap_err();
        prop_assert!(err.message.contains("depth limit"), "got: {}", err.message);
    }

    #[test]
    fn long_flat_token_lines_fail_typed(n in 1_000usize..10_000) {
        // A flat 10k-term chain is not nested *source*, but it builds a
        // left-leaning AST thousands of levels deep — which would overflow
        // the recursive compiler (and recursive Drop). The parser charges
        // chain length against the same depth budget, so this must fail
        // typed, never abort.
        let line = (0..n).map(|i| i.to_string()).collect::<Vec<_>>().join(" + ");
        let err = compile(&format!("return {line}")).unwrap_err();
        prop_assert!(err.message.contains("depth limit"), "got: {}", err.message);
    }

    #[test]
    fn long_index_chains_fail_typed(n in 200usize..5_000) {
        let src = format!("let l = [[0]]\nreturn l{}", "[0]".repeat(n));
        let err = compile(&src).unwrap_err();
        prop_assert!(err.message.contains("depth limit"), "got: {}", err.message);
    }

    #[test]
    fn many_flat_statements_compile_fine(n in 1_000usize..4_000) {
        // Program *length* is not nesting: thousands of sibling statements
        // must stay inside the budget.
        let src = (0..n).map(|i| format!("let v{i} = {i}")).collect::<Vec<_>>().join("\n");
        prop_assert!(compile(&src).is_ok());
    }

    #[test]
    fn unterminated_strings_fail_typed(prefix in "[a-z ]{0,30}") {
        let src = format!("let s = \"{prefix}");
        let err = compile(&src).unwrap_err();
        prop_assert!(err.message.contains("unterminated"), "got: {}", err.message);
    }

    #[test]
    fn hostile_generator_output_never_panics_the_pipeline(seed in 0u64..10_000) {
        // Compile + run under tight limits: every outcome is Ok or a typed
        // error; the process-level failures (native stack overflow, OOM)
        // are exactly what the sandbox must prevent.
        let limits = VmLimits { fuel: 20_000, max_memory: 128 * 1024, ..VmLimits::default() };
        let src = malsim_script::fuzz::hostile_script(seed);
        if let Ok(chunk) = compile(&src) {
            let mut vm = Vm::new();
            let _ = vm.run(&chunk, &mut NoHost, limits);
        }
    }
}
