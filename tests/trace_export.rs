//! Integration tests for the causal-span plane and the trace exporters:
//! span-id determinism across thread counts, causal reachability of every
//! Exfiltration/Destruction span back to an Infection root, and a golden
//! Perfetto snapshot guarding the export schema.

use malsim::experiments;
use malsim::export;
use malsim::golden;
use malsim::report;
use malsim_kernel::trace::TraceCategory;

/// The E1 run used throughout: the documented Figure-1 scale.
fn e1_run() -> experiments::E1Run {
    experiments::e1_stuxnet_end_to_end_run(42, 30, false)
}

#[test]
fn span_exports_are_byte_identical_across_runs() {
    let a = e1_run();
    let b = e1_run();
    let chrome_a = export::chrome_trace(&a.sim.trace, &a.sim.spans).to_canonical_string();
    let chrome_b = export::chrome_trace(&b.sim.trace, &b.sim.spans).to_canonical_string();
    assert_eq!(chrome_a, chrome_b, "same seed, same bytes");
    assert_eq!(export::jsonl(&a.sim.trace, &a.sim.spans), export::jsonl(&b.sim.trace, &b.sim.spans));
}

#[test]
fn span_ids_are_identical_at_every_sweep_thread_count() {
    // Each sim is single-threaded; sweeps only parallelize across points.
    // Profiling must not perturb ids either, so compare plain vs profiled
    // at several worker counts through the E13 sweep (the only experiment
    // whose span allocation runs under the parallel runner).
    let (rows_1, profiles_1) = experiments::e13_takedown_resilience_profiled_t(11, 6, 3, &[0.0, 0.5, 1.0], 1);
    for threads in [2, 8] {
        let (rows_t, profiles_t) =
            experiments::e13_takedown_resilience_profiled_t(11, 6, 3, &[0.0, 0.5, 1.0], threads);
        assert_eq!(rows_1, rows_t, "rows at threads={threads}");
        // Host-clock timings differ run to run; the deterministic parts —
        // category structure and event counts — must not.
        for (a, b) in profiles_1.iter().zip(&profiles_t) {
            assert_eq!(a.total_events, b.total_events, "threads={threads}");
            let cats_a: Vec<(&str, u64)> = a.rows.iter().map(|r| (r.category.as_str(), r.events)).collect();
            let cats_b: Vec<(&str, u64)> = b.rows.iter().map(|r| (r.category.as_str(), r.events)).collect();
            assert_eq!(cats_a, cats_b, "threads={threads}");
        }
    }
    let plain = experiments::e13_takedown_resilience_t(11, 6, 3, &[0.0, 0.5, 1.0], 1);
    assert_eq!(rows_1, plain, "profiling never changes the rows");
}

#[test]
fn every_destruction_and_exfil_span_reaches_an_infection_root() {
    let run = e1_run();
    let spans = &run.sim.spans;
    assert!(run.result.destroyed > 0, "E1 at seed 42 destroys centrifuges");
    let mut checked = 0;
    for cat in [TraceCategory::Destruction, TraceCategory::Exfiltration] {
        for leaf in spans.of(cat) {
            let chain = spans.chain(leaf.id);
            let root = chain.last().expect("chain includes the leaf itself");
            assert_eq!(
                root.category,
                TraceCategory::Infection,
                "span {} ({}) must chain to an infection root, got {:?} via {:?}",
                leaf.id,
                leaf.name,
                root.category,
                chain.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the run produced destruction spans to check");
}

#[test]
fn tagged_events_point_at_live_spans() {
    let run = e1_run();
    for event in run.sim.trace.events() {
        if let Some(id) = event.span {
            let span = run.sim.spans.get(id).expect("event tags only allocated spans");
            assert!(span.start <= event.time, "span {} opened after its event", id);
        }
    }
    // The campaign wiring tags the causally interesting categories.
    for cat in [TraceCategory::Infection, TraceCategory::Destruction] {
        assert!(run.sim.trace.of(cat).any(|e| e.span.is_some()), "{cat} events carry span tags");
    }
}

#[test]
fn perfetto_golden_snapshot() {
    // A small, fast, fully deterministic run pinned as a golden: schema or
    // determinism drift in the exporter shows up as a byte diff here.
    let run = experiments::e1_stuxnet_end_to_end_run(7, 4, false);
    let doc = export::chrome_trace(&run.sim.trace, &run.sim.spans);
    export::validate_chrome_trace(&doc).expect("exporter output validates");
    if let Err(msg) = golden::check("perfetto_e1_seed7", &doc) {
        panic!("{msg}");
    }
}

#[test]
fn jsonl_feed_parses_line_by_line() {
    let run = experiments::e1_stuxnet_end_to_end_run(7, 4, false);
    let feed = export::jsonl(&run.sim.trace, &run.sim.spans);
    let mut spans = 0;
    let mut events = 0;
    for line in feed.lines() {
        let record = report::parse(line).expect("every JSONL line is standalone JSON");
        let report::Json::Obj(fields) = &record else { panic!("records are objects") };
        match fields.iter().find(|(k, _)| k == "kind") {
            Some((_, report::Json::Str(kind))) if kind == "span" => spans += 1,
            Some((_, report::Json::Str(kind))) if kind == "event" => events += 1,
            other => panic!("unknown kind: {other:?}"),
        }
    }
    assert_eq!(spans, run.sim.spans.len());
    assert_eq!(events, run.sim.trace.len());
}
