//! Integration: the parallel sweep runner's determinism contract — every
//! experiment's canonical JSON is byte-identical at thread counts 1, 2,
//! and 8.
//!
//! This is what licenses the golden suite (and CI) to run sweeps at
//! whatever parallelism the machine offers: the thread count is a pure
//! throughput knob, never a result knob.

use malsim::prelude::*;

#[test]
fn every_experiment_is_byte_identical_at_1_2_and_8_threads() {
    for spec in experiments::golden_specs() {
        let serial = spec.run(1).to_canonical_string();
        for threads in [2, 8] {
            let parallel = spec.run(threads).to_canonical_string();
            assert_eq!(serial, parallel, "{} diverged between 1 and {threads} threads", spec.name);
        }
    }
}

#[test]
fn oversubscribed_and_single_point_sweeps_hold_the_contract() {
    // More workers than points, and a one-point grid: both must match serial.
    let serial = experiments::e13_takedown_resilience_t(11, 6, 3, &[0.5], 1);
    assert_eq!(serial, experiments::e13_takedown_resilience_t(11, 6, 3, &[0.5], 64));
    let grid = experiments::grids::E2_PATCH_RATES;
    assert_eq!(
        experiments::e2_zero_day_ablation_t(7, 20, 3, grid, 1),
        experiments::e2_zero_day_ablation_t(7, 20, 3, grid, 64),
    );
}
