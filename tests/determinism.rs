//! Integration: determinism guarantees — the same `(scenario, seed)` pair
//! yields byte-identical traces and metrics; different seeds diverge.

use malsim::prelude::*;
use malsim_kernel::time::SimDuration;
use malsim_os::usb::UsbDrive;

/// A moderately rich combined run touching every subsystem.
fn combined_run(seed: u64) -> (String, String, usize, usize) {
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(10);
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    pki.register_stuxnet_c2(&mut world);
    pki.arm_flame(&mut world, &mut sim, 8, 32);
    pki.arm_shamoon(&mut world);
    world.campaigns.shamoon.trigger_at = Some(sim.now() + SimDuration::from_days(4));

    let usb = world.usb_drives.push(UsbDrive::new("seed"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
    activity::schedule_usb_courier(
        &mut sim,
        usb,
        (0..4).map(HostId::new).collect(),
        SimDuration::from_hours(5),
    );
    flame::client::infect_host(&mut world, &mut sim, HostId::new(5), "seed");
    flame::mitm::snack_claim_wpad(&mut world, &mut sim, HostId::new(5));
    shamoon::dropper::infect_host(&mut world, &mut sim, HostId::new(9), "phish");
    activity::schedule_update_checks(&mut sim, (0..10).map(HostId::new).collect(), SimDuration::from_hours(19));
    activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
    activity::schedule_stuxnet_checkins(&mut sim, SimDuration::from_hours(7));

    sim.run_until(&mut world, sim.now() + SimDuration::from_days(6));
    (
        sim.trace.render(),
        sim.metrics.to_string(),
        world.campaigns.stuxnet.infections.len() + world.campaigns.flame_clients.len(),
        world.bricked_count(),
    )
}

#[test]
fn same_seed_is_byte_identical() {
    let a = combined_run(123);
    let b = combined_run(123);
    assert_eq!(a.0, b.0, "traces identical");
    assert_eq!(a.1, b.1, "metrics identical");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_seeds_diverge() {
    let a = combined_run(123);
    let b = combined_run(456);
    // Campaign structure may coincide, but the full trace essentially never
    // does (random wiper names, beacon contents, courier draws).
    assert_ne!(a.0, b.0, "different seeds should produce different traces");
}

#[test]
fn experiment_functions_are_deterministic() {
    let a = experiments::e1_stuxnet_end_to_end(77, 15);
    let b = experiments::e1_stuxnet_end_to_end(77, 15);
    assert_eq!(a, b);
    let c = experiments::e9_shamoon_wipe(77, 3, 10, 1);
    let d = experiments::e9_shamoon_wipe(77, 3, 10, 1);
    assert_eq!(c, d);
}
