//! Integration: determinism guarantees — the same `(scenario, seed)` pair
//! yields byte-identical traces and metrics; different seeds diverge.

use malsim::prelude::*;
use malsim_kernel::time::SimDuration;
use malsim_os::usb::UsbDrive;

/// A moderately rich combined run touching every subsystem.
fn combined_run(seed: u64) -> (String, String, usize, usize) {
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(10);
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    pki.register_stuxnet_c2(&mut world);
    pki.arm_flame(&mut world, &mut sim, 8, 32);
    pki.arm_shamoon(&mut world);
    world.campaigns.shamoon.trigger_at = Some(sim.now() + SimDuration::from_days(4));

    let usb = world.usb_drives.push(UsbDrive::new("seed"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
    activity::schedule_usb_courier(
        &mut sim,
        usb,
        (0..4).map(HostId::new).collect(),
        SimDuration::from_hours(5),
    );
    flame::client::infect_host(&mut world, &mut sim, HostId::new(5), "seed");
    flame::mitm::snack_claim_wpad(&mut world, &mut sim, HostId::new(5));
    shamoon::dropper::infect_host(&mut world, &mut sim, HostId::new(9), "phish");
    activity::schedule_update_checks(
        &mut sim,
        (0..10).map(HostId::new).collect(),
        SimDuration::from_hours(19),
    );
    activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
    activity::schedule_stuxnet_checkins(&mut sim, SimDuration::from_hours(7));

    sim.run_until(&mut world, sim.now() + SimDuration::from_days(6));
    (
        sim.trace.render(),
        sim.metrics.to_string(),
        world.campaigns.stuxnet.infections.len() + world.campaigns.flame_clients.len(),
        world.bricked_count(),
    )
}

#[test]
fn same_seed_is_byte_identical() {
    let a = combined_run(123);
    let b = combined_run(123);
    assert_eq!(a.0, b.0, "traces identical");
    assert_eq!(a.1, b.1, "metrics identical");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_seeds_diverge() {
    let a = combined_run(123);
    let b = combined_run(456);
    // Campaign structure may coincide, but the full trace essentially never
    // does (random wiper names, beacon contents, courier draws).
    assert_ne!(a.0, b.0, "different seeds should produce different traces");
}

/// Which fault schedule a [`faulted_run`] installs.
#[derive(Clone, Copy, PartialEq)]
enum Schedule {
    /// No windows at all.
    Empty,
    /// One window scheduled entirely after the run's horizon: present in the
    /// plane but never active.
    BeyondHorizon,
    /// A full mix: link flap, packet loss, DNS outage, and a sinkhole.
    Stormy,
    /// The same mix shifted earlier, so it bites differently.
    StormyEarly,
}

/// The combined run plus a deterministic fault schedule drawn from the
/// shared plane.
fn faulted_run(seed: u64, schedule: Schedule) -> (String, String) {
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(10);
    let pki = Pki::install(&mut world);
    pki.arm_flame(&mut world, &mut sim, 8, 32);
    for i in 0..4 {
        flame::client::infect_host(&mut world, &mut sim, HostId::new(i), "seed");
    }
    activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));

    let start = sim.now();
    let at = |h: u64| start + SimDuration::from_hours(h);
    match schedule {
        Schedule::Empty => {}
        Schedule::BeyondHorizon => {
            // The run lasts 4 days; this window can never be active.
            sim.faults.link_down("zone:office", at(30 * 24), at(31 * 24));
        }
        Schedule::Stormy | Schedule::StormyEarly => {
            // StormyEarly shifts every window 12 hours earlier.
            let s = if schedule == Schedule::StormyEarly { 12 } else { 0 };
            sim.faults.link_down("zone:office", at(24 - s), at(30 - s));
            sim.faults.packet_loss("*", 0.4, at(48 - s), at(56 - s));
            sim.faults.dns_outage("*", at(72 - s), at(76 - s));
            let ip = world.campaigns.flame_platform.as_ref().unwrap().servers[0].ip;
            let mut op =
                malsim_defense::sinkhole::SinkholeCampaign::new(malsim_net::addr::Ipv4::new(198, 51, 100, 1));
            op.seize_server_and_domains(&mut world.dns, &mut sim.faults, ip, at(48 - s));
            world.campaigns.flame_platform.as_mut().unwrap().servers[0].seized = true;
        }
    }

    sim.run_until(&mut world, start + SimDuration::from_days(4));
    (sim.trace.render(), sim.metrics.to_string())
}

#[test]
fn same_seed_and_fault_schedule_is_byte_identical() {
    let a = faulted_run(321, Schedule::Stormy);
    let b = faulted_run(321, Schedule::Stormy);
    assert_eq!(a.0, b.0, "faulted traces identical");
    assert_eq!(a.1, b.1, "faulted metrics identical");
}

#[test]
fn different_fault_schedules_diverge() {
    let calm = faulted_run(321, Schedule::Empty);
    let stormy = faulted_run(321, Schedule::Stormy);
    let early = faulted_run(321, Schedule::StormyEarly);
    assert_ne!(calm.0, stormy.0, "faults must leave a mark on the trace");
    assert_ne!(stormy.0, early.0, "shifting the schedule changes the run");
}

#[test]
fn inactive_fault_windows_are_invisible() {
    // A scheduled-but-never-active window must not perturb a single random
    // draw: the run is byte-identical to one with an empty plane.
    let calm = faulted_run(321, Schedule::Empty);
    let latent = faulted_run(321, Schedule::BeyondHorizon);
    assert_eq!(calm.0, latent.0, "latent windows leave the trace untouched");
    assert_eq!(calm.1, latent.1, "latent windows leave the metrics untouched");
}

/// All four fault schedules evaluated as one sweep: each point builds its
/// own world, installs its schedule, and renders trace + metrics.
fn faulted_schedule_sweep(threads: usize) -> Vec<(String, String)> {
    let schedules = [Schedule::Empty, Schedule::BeyondHorizon, Schedule::Stormy, Schedule::StormyEarly];
    malsim::sweep::run("faulted-determinism", 321, &schedules, threads, |ctx, &schedule| {
        faulted_run(ctx.base_seed, schedule)
    })
}

#[test]
fn fault_schedules_under_the_parallel_runner_are_byte_identical() {
    // An active FaultPlane must not break the sweep runner's contract:
    // traces and metrics of every scheduled point match the serial run at
    // any worker count.
    let serial = faulted_schedule_sweep(1);
    for threads in [2, 8] {
        assert_eq!(serial, faulted_schedule_sweep(threads), "diverged at {threads} threads");
    }
    // And the sweep preserves point order: the calm and latent points (0, 1)
    // are identical runs, the stormy ones (2, 3) differ from both.
    assert_eq!(serial[0], serial[1]);
    assert_ne!(serial[0].0, serial[2].0);
    assert_ne!(serial[2].0, serial[3].0);
}

#[test]
fn experiment_functions_are_deterministic() {
    let a = experiments::e1_stuxnet_end_to_end(77, 15);
    let b = experiments::e1_stuxnet_end_to_end(77, 15);
    assert_eq!(a, b);
    let c = experiments::e9_shamoon_wipe(77, 3, 10, 1);
    let d = experiments::e9_shamoon_wipe(77, 3, 10, 1);
    assert_eq!(c, d);
}
