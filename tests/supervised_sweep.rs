//! Supervised-sweep integration tests: kill/resume byte-identity on the real
//! E13 experiment, deterministic watchdog truncation, invariant checking on
//! real campaign runs, and a deliberately seeded violation surfacing through
//! the whole checkpoint pipeline.

use std::path::PathBuf;

use malsim::checkpoint::{run_checkpointed, CheckpointConfig, PointStatus};
use malsim::experiments::{self, SupervisedSweepOpts};
use malsim::report::Json;
use malsim::scenario::ScenarioBuilder;
use malsim::sweep::{PointRun, PoolConfig, SweepSupervisor};
use malsim_kernel::prelude::{Sim, SimTime, StopReason, Watchdog};
use malsim_kernel::time::SimDuration;
use malsim_malware::common::InfectionRecord;
use malsim_malware::world::World;
use malsim_os::host::HostId;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("malsim-it-{tag}-{}.ckpt", std::process::id()))
}

/// A small E13 grid: full scale is the goldens' job, resume semantics are
/// this file's.
const FRACTIONS: &[f64] = &[0.0, 0.5, 1.0];

#[test]
fn e13_resume_is_byte_identical_across_thread_counts() {
    let full_path = temp("e13-full");
    let base = SupervisedSweepOpts {
        pool: PoolConfig::explicit(2),
        supervisor: SweepSupervisor::default(),
        ckpt_path: &full_path,
        resume: false,
    };
    let full = experiments::e13_takedown_resilience_supervised(11, 4, 2, FRACTIONS, &base).unwrap();
    let full_report = full.report().to_canonical_string();
    assert_eq!(full.points.len(), FRACTIONS.len());
    assert_eq!(full.resumed_points, 0);

    // Simulate a kill after the first checkpointed point: keep one line.
    let first_line =
        std::fs::read_to_string(&full_path).unwrap().lines().next().expect("one record").to_owned();
    for threads in [1, 2, 8] {
        let path = temp(&format!("e13-resume-{threads}"));
        std::fs::write(&path, format!("{first_line}\n")).unwrap();
        let resumed = experiments::e13_takedown_resilience_supervised(
            11,
            4,
            2,
            FRACTIONS,
            &SupervisedSweepOpts {
                pool: PoolConfig::explicit(threads),
                ckpt_path: &path,
                resume: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(resumed.resumed_points, 1);
        assert_eq!(
            resumed.report().to_canonical_string(),
            full_report,
            "kill+resume must be byte-identical at threads={threads}"
        );
        std::fs::remove_file(&path).unwrap();
    }
    std::fs::remove_file(&full_path).unwrap();
}

#[test]
fn e13_event_budget_truncates_deterministically() {
    let supervisor = SweepSupervisor { event_budget: Some(50), ..SweepSupervisor::default() };
    let reports: Vec<String> = [1, 2]
        .into_iter()
        .map(|threads| {
            let path = temp(&format!("e13-budget-{threads}"));
            let out = experiments::e13_takedown_resilience_supervised(
                5,
                3,
                2,
                FRACTIONS,
                &SupervisedSweepOpts {
                    pool: PoolConfig::explicit(threads),
                    supervisor,
                    ckpt_path: &path,
                    resume: false,
                },
            )
            .unwrap();
            for p in &out.points {
                assert_eq!(p.record.status, PointStatus::Truncated);
                assert_eq!(p.record.truncation.as_deref(), Some("event_budget"));
                assert!(p.record.row.is_some(), "a truncated point still reports its partial row");
            }
            std::fs::remove_file(&path).unwrap();
            out.report().to_canonical_string()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "the event budget is a deterministic limit");
}

#[test]
fn e13_supervised_run_satisfies_all_invariants() {
    let path = temp("e13-inv");
    let supervisor = SweepSupervisor { check_invariants: true, ..SweepSupervisor::default() };
    let out = experiments::e13_takedown_resilience_supervised(
        7,
        3,
        2,
        FRACTIONS,
        &SupervisedSweepOpts { pool: PoolConfig::explicit(2), supervisor, ckpt_path: &path, resume: false },
    )
    .unwrap();
    for p in &out.points {
        assert_eq!(p.record.status, PointStatus::Completed);
        assert!(p.record.violations.is_empty(), "{:?}", p.record.violations);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn e1_checked_run_is_violation_free() {
    let (run, violations) = experiments::e1_stuxnet_end_to_end_checked(42, 10, false, true);
    assert!(violations.is_empty(), "{violations:?}");
    // The checker never perturbs the run: same headline as the unchecked path.
    assert_eq!(run.result, experiments::e1_stuxnet_end_to_end(42, 10));
}

#[test]
fn seeded_violation_surfaces_through_the_checkpoint_pipeline() {
    let path = temp("seeded-violation");
    let cfg = CheckpointConfig {
        experiment: "negative",
        base_seed: 1,
        pool: PoolConfig::explicit(1),
        supervisor: SweepSupervisor::default(),
        path: &path,
        resume: false,
        backend: None,
    };
    let corrupt = |_: &malsim::sweep::SweepCtx, _: &u32| {
        let (mut world, mut sim) = ScenarioBuilder::new(1).office_lan(2);
        malsim::invariants::install(&mut sim, false);
        sim.schedule_in(SimDuration::from_hours(1), |w: &mut World, sim| {
            // The deliberate corruption: an infection record for a host that
            // was never spawned.
            w.campaigns.stuxnet.infections.insert(
                HostId::new(99),
                InfectionRecord { infected_at: sim.now(), vector: "usb-lnk".into() },
            );
        });
        sim.run(&mut world);
        PointRun { result: Json::U64(0), truncation: None, violations: sim.take_violations() }
    };
    let out = run_checkpointed(&cfg, &[0u32], corrupt).unwrap();
    let rec = &out.points[0].record;
    assert_eq!(rec.status, PointStatus::Completed);
    assert_eq!(rec.violations.len(), 1, "{:?}", rec.violations);
    assert!(rec.violations[0].contains("infected-hosts-exist"), "{}", rec.violations[0]);
    assert!(rec.violations[0].contains("99"), "{}", rec.violations[0]);

    // The violation is durable: a resume keeps the record (with its
    // violation) instead of re-running the point — if it re-ran, this
    // panicking closure would leave the point poisoned.
    let resumed = run_checkpointed(&CheckpointConfig { resume: true, ..cfg }, &[0u32], |_, _: &u32| {
        panic!("a completed point must not re-run on resume")
    })
    .unwrap();
    assert_eq!(resumed.resumed_points, 1);
    let rec = &resumed.points[0].record;
    assert_eq!(rec.status, PointStatus::Completed);
    assert!(rec.violations[0].contains("infected-hosts-exist"));
    assert_eq!(resumed.report(), out.report());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn poisoned_e13_style_point_quarantines_without_aborting() {
    // The quarantine drill at experiment scale: one grid point panics
    // mid-simulation, the other points complete with real rows.
    let path = temp("quarantine");
    let cfg = CheckpointConfig {
        experiment: "quarantine",
        base_seed: 9,
        pool: PoolConfig::explicit(2),
        supervisor: SweepSupervisor::default(),
        path: &path,
        resume: false,
        backend: None,
    };
    let grid: Vec<f64> = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    let out = run_checkpointed(&cfg, &grid, |ctx, &frac| {
        if ctx.point == 2 {
            panic!("injected mid-grid failure");
        }
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.derived_seed()).office_lan(3);
        sim.schedule_in(SimDuration::from_hours(1), |_: &mut World, _| {});
        sim.run(&mut world);
        PointRun::complete(Json::obj([("frac", frac.into()), ("hosts", world.hosts.len().into())]))
    })
    .unwrap();
    assert_eq!(out.points.len(), 5);
    for (i, p) in out.points.iter().enumerate() {
        if i == 2 {
            assert_eq!(p.record.status, PointStatus::Poisoned);
            assert_eq!(p.record.panic_msg.as_deref(), Some("injected mid-grid failure"));
            assert_eq!(p.record.params.as_deref(), Some("0.5"));
            assert_eq!(p.record.row, None);
        } else {
            assert_eq!(p.record.status, PointStatus::Completed, "point {i}");
            assert!(p.record.row.is_some(), "point {i}");
        }
    }
    let report = out.report();
    assert_eq!(report.get("poisoned").and_then(Json::as_u64), Some(1));
    assert_eq!(report.get("completed").and_then(Json::as_u64), Some(4));
    std::fs::remove_file(&path).unwrap();
}

/// Disk-full mid-sweep on real scenario points: the checkpoint quarantines
/// with a typed `StorageFull` fault, the grid still completes, and the
/// report is byte-identical to a run on a healthy disk.
#[test]
fn disk_full_mid_sweep_quarantines_the_checkpoint_but_the_grid_completes() {
    use malsim::chaosfs::{ChaosFs, FaultSchedule};

    let clean_path = temp("chaos-clean");
    let cfg = CheckpointConfig {
        experiment: "enospc-chaos",
        base_seed: 13,
        pool: PoolConfig::explicit(2),
        supervisor: SweepSupervisor::default(),
        path: &clean_path,
        resume: false,
        backend: None,
    };
    let eval = |ctx: &malsim::sweep::SweepCtx, &frac: &f64| {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.derived_seed()).office_lan(3);
        sim.schedule_in(SimDuration::from_hours(1), |_: &mut World, _| {});
        sim.run(&mut world);
        PointRun::complete(Json::obj([("frac", frac.into()), ("hosts", world.hosts.len().into())]))
    };
    let clean = run_checkpointed(&cfg, FRACTIONS, eval).unwrap();
    assert!(clean.storage_fault.is_none());

    let chaos = ChaosFs::new(FaultSchedule { disk_capacity: Some(400), ..FaultSchedule::quiet(13) });
    let chaos_path = temp("chaos-enospc");
    let out = run_checkpointed(
        &CheckpointConfig { path: &chaos_path, backend: Some(&chaos), ..cfg },
        FRACTIONS,
        eval,
    )
    .unwrap();
    let fault = out.storage_fault.clone().expect("ENOSPC must quarantine the checkpoint");
    assert_eq!(fault.kind, std::io::ErrorKind::StorageFull);
    assert_eq!(out.points.len(), FRACTIONS.len(), "the grid still completes");
    assert_eq!(
        out.report().to_canonical_string(),
        clean.report().to_canonical_string(),
        "a quarantined checkpoint never perturbs report bytes"
    );
    std::fs::remove_file(&clean_path).unwrap();
    let _ = std::fs::remove_file(&chaos_path);
}

/// Fsync failure mid-sweep: the writer quarantines on the first failed
/// fsync (never retried), later points stop persisting, and resuming from
/// the surviving durable prefix converges to the same bytes.
#[test]
fn fsync_failure_mid_sweep_still_resumes_byte_identically() {
    use malsim::chaosfs::{ChaosFs, FaultSchedule};

    let clean_path = temp("fsync-clean");
    let cfg = CheckpointConfig {
        experiment: "fsync-chaos",
        base_seed: 21,
        pool: PoolConfig::explicit(2),
        supervisor: SweepSupervisor::default(),
        path: &clean_path,
        resume: false,
        backend: None,
    };
    let eval = |ctx: &malsim::sweep::SweepCtx, &frac: &f64| {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.derived_seed()).office_lan(3);
        sim.schedule_in(SimDuration::from_hours(1), |_: &mut World, _| {});
        sim.run(&mut world);
        PointRun::complete(Json::obj([("frac", frac.into()), ("hosts", world.hosts.len().into())]))
    };
    let clean = run_checkpointed(&cfg, FRACTIONS, eval).unwrap();
    let clean_report = clean.report().to_canonical_string();

    let chaos = ChaosFs::new(FaultSchedule { fsync_fail_permille: 1000, ..FaultSchedule::quiet(21) });
    let chaos_path = temp("fsync-chaos");
    let out = run_checkpointed(
        &CheckpointConfig { path: &chaos_path, backend: Some(&chaos), ..cfg },
        FRACTIONS,
        eval,
    )
    .unwrap();
    let fault = out.storage_fault.clone().expect("an fsync failure must quarantine");
    assert!(fault.to_string().contains("fsync"), "{fault}");
    assert_eq!(out.report().to_canonical_string(), clean_report, "degraded, never diverged");

    // Whatever prefix reached the disk before quarantine is valid; resuming
    // over it re-runs only the lost points and lands on the same bytes.
    let resumed =
        run_checkpointed(&CheckpointConfig { path: &chaos_path, resume: true, ..cfg }, FRACTIONS, eval)
            .unwrap();
    assert!(resumed.storage_fault.is_none());
    assert_eq!(resumed.report().to_canonical_string(), clean_report, "resume over the durable prefix");
    std::fs::remove_file(&clean_path).unwrap();
    let _ = std::fs::remove_file(&chaos_path);
}

/// Event-budget truncation landing in the middle of a same-timestamp batch:
/// the calendar queue drains ties as one chained batch internally, but the
/// watchdog must still be able to stop between any two of them, leaving the
/// clock parked at the last event it actually dispatched.
#[test]
fn event_budget_splits_a_same_timestamp_batch_cleanly() {
    let batch_at = SimTime::EPOCH + SimDuration::from_hours(1);
    let mut sim: Sim<Vec<u32>> = Sim::new(SimTime::EPOCH, 3);
    let mut world = Vec::new();
    for tag in 0..10u32 {
        sim.schedule_at(batch_at, move |w: &mut Vec<u32>, _| w.push(tag));
    }
    sim.schedule_at(batch_at + SimDuration::from_hours(1), |w: &mut Vec<u32>, _| w.push(99));

    // Budget of 4 stops inside the 10-event tie.
    let run = sim.run_until_watched(&mut world, SimTime::MAX, Watchdog::events(4));
    assert_eq!(run.reason, StopReason::EventBudget);
    assert_eq!(run.executed, 4);
    assert_eq!(world, vec![0, 1, 2, 3], "ties dispatch in scheduling order");
    assert_eq!(sim.now(), batch_at, "clock stays at the last dispatched event, not past the batch");

    // Resuming finishes the batch from exactly where it stopped.
    let rest = sim.run_until_watched(&mut world, SimTime::MAX, Watchdog::UNLIMITED);
    assert_eq!(rest.reason, StopReason::Completed);
    assert_eq!(world, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 99]);
}

/// The same mid-batch truncation, pushed through the supervised sweep runner
/// at worker counts 1, 2, and 8 (the in-process equivalent of the
/// `MALSIM_THREADS` knob): canonical reports must be byte-identical, because
/// the budget is simulation-deterministic and worker scheduling never touches
/// event order inside a point.
#[test]
fn mid_batch_truncation_is_byte_identical_across_worker_counts() {
    let budgets: Vec<u64> = vec![3, 7, 10, 25];
    let reports: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let path = temp(&format!("batch-budget-{threads}"));
            let cfg = CheckpointConfig {
                experiment: "batch_budget",
                base_seed: 17,
                pool: PoolConfig::explicit(threads),
                supervisor: SweepSupervisor::default(),
                path: &path,
                resume: false,
                backend: None,
            };
            let out = run_checkpointed(&cfg, &budgets, |_, &budget| {
                let batch_at = SimTime::EPOCH + SimDuration::from_hours(1);
                let mut sim: Sim<Vec<u32>> = Sim::new(SimTime::EPOCH, 3);
                let mut world = Vec::new();
                for tag in 0..20u32 {
                    sim.schedule_at(batch_at, move |w: &mut Vec<u32>, _| w.push(tag));
                }
                let run = sim.run_until_watched(&mut world, SimTime::MAX, Watchdog::events(budget));
                let fired: Vec<Json> = world.iter().map(|&t| Json::from(u64::from(t))).collect();
                PointRun {
                    result: Json::obj([
                        ("executed", run.executed.into()),
                        ("now_ms", sim.now().as_millis().into()),
                        ("completed", run.completed().into()),
                        ("fired", Json::Arr(fired)),
                    ]),
                    truncation: malsim::sweep::Truncation::from_stop(run.reason),
                    violations: Vec::new(),
                }
            })
            .unwrap();
            std::fs::remove_file(&path).unwrap();
            out.report().to_canonical_string()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "threads=1 vs threads=2");
    assert_eq!(reports[0], reports[2], "threads=1 vs threads=8");
}
