//! Integration tests for the unified telemetry plane.
//!
//! The metrics registry is process-global, so every test serializes on one
//! mutex and calls [`telemetry::reset`] before producing counts. Arming is
//! likewise process-wide and one-way; each test arms up front (idempotent).
//!
//! Covered here:
//! * the deterministic snapshot is byte-identical at pool widths 1, 2, and 8
//!   for a seeded three-tenant job run with rejections and a cancellation;
//! * the WFQ-lag gauge matches the virtual-clock arithmetic by hand;
//! * the calendar-queue structural counters flushed through the kernel hook
//!   equal the sim's own [`Sim::queue_stats`] readings, and the dispatch
//!   counter equals the executed-event count;
//! * the JSONL sink emits one well-formed deterministic sample per boundary.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use malsim::jobs::{JobBudget, JobQueue, JobSpec, Priority, QueueConfig, SeedPolicy};
use malsim::report::{self, Json};
use malsim::sweep::{PointRun, PoolConfig, Truncation};
use malsim::{jobs, telemetry};
use malsim_kernel::sched::Sim;
use malsim_kernel::time::{SimDuration, SimTime};

/// Serializes registry access across the test binary's threads.
static REGISTRY: Mutex<()> = Mutex::new(());

fn registry() -> MutexGuard<'static, ()> {
    let guard = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::arm();
    telemetry::reset();
    guard
}

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("malsim-telemetry-{tag}-{}.jsonl", std::process::id()))
}

/// The same cheap deterministic point the job-queue tests use: a tiny
/// event-driven accumulator so every point drives the real kernel and the
/// dispatch counters see traffic.
fn sim_row(jp: &jobs::JobPoint<'_>) -> PointRun<Json> {
    let events = jp.params.get("events").and_then(Json::as_u64).unwrap_or(8);
    let mut sim: Sim<u64> = Sim::new(SimTime::EPOCH, jp.seed());
    for i in 0..events {
        sim.schedule_in(SimDuration::from_secs(i + 1), |acc: &mut u64, sim: &mut Sim<u64>| {
            let draw: u64 = sim.rng.range(0..65_536u64);
            *acc = acc.wrapping_mul(31).wrapping_add(draw);
        });
    }
    let mut acc = jp.seed();
    let until = SimTime::EPOCH + SimDuration::from_secs(events + 2);
    let run = sim.run_until_watched(&mut acc, until, jp.watchdog);
    PointRun {
        result: Json::obj([("params", jp.params.clone()), ("acc", Json::U64(acc))]),
        truncation: Truncation::from_stop(run.reason),
        violations: Vec::new(),
    }
}

fn grid(tag: &str, points: u64) -> Vec<Json> {
    (0..points)
        .map(|p| Json::obj([("tag", tag.into()), ("p", Json::U64(p)), ("events", Json::U64(6))]))
        .collect()
}

fn spec(job_id: &str, tenant: &str, priority: Priority, grid: Vec<Json>) -> JobSpec {
    JobSpec {
        job_id: job_id.to_owned(),
        tenant: tenant.to_owned(),
        experiment: "telemetry-it",
        base_seed: 40,
        seed_policy: SeedPolicy::Derived,
        priority,
        budget: JobBudget::default(),
        grid,
    }
}

/// One full three-tenant run: three admitted jobs (disjoint grids, so the
/// result cache never collapses points), three typed rejections, and a
/// fourth job cancelled before the pool starts (its points are cancelled at
/// the first scheduling boundary on every pool width).
fn three_tenant_run(threads: usize) -> String {
    telemetry::reset();
    let cfg = QueueConfig { pool: PoolConfig::explicit(threads), max_jobs: 4, ..QueueConfig::default() };
    let mut queue = JobQueue::new(cfg).expect("no journal configured");
    queue.submit(spec("atlas", "research", Priority::Normal, grid("a", 5))).expect("atlas fits");
    queue.submit(spec("bolt", "ops", Priority::Low, grid("b", 4))).expect("bolt fits");
    queue.submit(spec("crow", "red-team", Priority::High, grid("c", 3))).expect("crow fits");
    let dune = queue.submit(spec("dune", "walk-in", Priority::Normal, grid("d", 2))).expect("dune fits");
    assert!(queue.submit(spec("empty", "walk-in", Priority::Normal, Vec::new())).is_err());
    assert!(queue.submit(spec("atlas", "research", Priority::Normal, grid("x", 1))).is_err());
    assert!(queue.submit(spec("erg", "walk-in", Priority::Normal, grid("e", 1))).is_err());
    dune.token.cancel();
    queue.run(|jp| Ok(sim_row(jp))).expect("run succeeds");
    telemetry::render_deterministic()
}

#[test]
fn deterministic_snapshot_is_byte_identical_across_pool_widths() {
    let _g = registry();
    let one = three_tenant_run(1);
    let two = three_tenant_run(2);
    let eight = three_tenant_run(8);
    assert_eq!(one, two, "pool width 2 must not change the deterministic snapshot");
    assert_eq!(one, eight, "pool width 8 must not change the deterministic snapshot");

    // Spot-check the counts the scenario pins down exactly.
    let det = report::parse(&one).expect("snapshot parses");
    let count = |name: &str| det.get(name).and_then(Json::as_u64).unwrap_or_else(|| panic!("{name}"));
    assert_eq!(count("malsim_jobs_admitted_total"), 4);
    assert_eq!(count("malsim_points_completed_total"), 12, "atlas 5 + bolt 4 + crow 3");
    assert_eq!(count("malsim_jobs_cancelled_points_total"), 2, "both of dune's points");
    let rejected = det.get("malsim_jobs_rejected_total").expect("rejection family");
    assert_eq!(rejected.get("empty_grid").and_then(Json::as_u64), Some(1));
    assert_eq!(rejected.get("duplicate_job_id").and_then(Json::as_u64), Some(1));
    assert_eq!(rejected.get("queue_full").and_then(Json::as_u64), Some(1));
    assert_eq!(rejected.get("grid_too_large").and_then(Json::as_u64), Some(0));
    // Every point drives a real sim, so the kernel-side dispatch counters saw
    // traffic through the hook.
    let dispatches = det.get("malsim_sched_dispatches_total").expect("dispatch family");
    let total: u64 = match dispatches {
        Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        other => panic!("dispatch family is labeled: {other:?}"),
    };
    assert!(total > 0, "12 points x 6 events must dispatch");
}

#[test]
fn wfq_lag_gauge_matches_the_virtual_clock_math() {
    let _g = registry();
    let cfg = QueueConfig { pool: PoolConfig::explicit(1), max_jobs: 3, ..QueueConfig::default() };
    let mut queue = JobQueue::new(cfg).expect("no journal configured");
    queue.submit(spec("atlas", "research", Priority::Normal, grid("a", 5))).expect("atlas fits");
    queue.submit(spec("bolt", "ops", Priority::Low, grid("b", 4))).expect("bolt fits");
    queue.submit(spec("crow", "red-team", Priority::High, grid("c", 3))).expect("crow fits");
    queue.run(|jp| Ok(sim_row(jp))).expect("run succeeds");

    // Each dispatch advances the picked tenant's virtual clock by
    // `WFQ_QUANTUM / weight` = 16/4 (normal), 16/1 (low), 16/16 (high):
    //   research: 5 picks x 4 = 20, ops: 4 x 16 = 64, red-team: 3 x 1 = 3.
    // The gauge reports each tenant's lag behind the fleet minimum (3).
    let det = telemetry::deterministic_json();
    let expected =
        Json::obj([("ops", Json::U64(61)), ("red-team", Json::U64(0)), ("research", Json::U64(17))]);
    assert_eq!(det.get("malsim_jobs_wfq_lag"), Some(&expected));
}

#[test]
fn hook_flushed_queue_counters_match_the_sims_own_stats() {
    let _g = registry();
    // Enough non-monotone inserts to outgrow the initial ring (resizes) and
    // a cancelled half (tombstones); whatever the queue's cursor does, the
    // registry must mirror the sim's own counters exactly.
    let mut sim: Sim<Vec<u64>> = Sim::new(SimTime::EPOCH, 1);
    let mut handles = Vec::new();
    for i in 0..1000u64 {
        let h =
            sim.schedule_at(SimTime::EPOCH + SimDuration::from_millis(i * 14), move |w: &mut Vec<u64>, _| {
                w.push(i);
            });
        handles.push(h);
    }
    for i in (1..1000u64).rev() {
        let h = sim.schedule_at(
            SimTime::EPOCH + SimDuration::from_millis(i * 14 - 7),
            move |w: &mut Vec<u64>, _| {
                w.push(i);
            },
        );
        handles.push(h);
    }
    for h in handles.iter().step_by(2) {
        sim.cancel(*h);
    }
    let mut fired = Vec::new();
    sim.run(&mut fired);

    let stats = sim.queue_stats();
    assert!(stats.resizes > 0, "2000 inserts must outgrow the initial ring");
    assert!(stats.tombstone_reaps >= 999, "the cancelled half is reaped by the drain");

    let det = telemetry::deterministic_json();
    let count = |name: &str| det.get(name).and_then(Json::as_u64).unwrap_or_else(|| panic!("{name}"));
    assert_eq!(count("malsim_calq_resizes_total"), stats.resizes);
    assert_eq!(count("malsim_calq_tombstone_reaps_total"), stats.tombstone_reaps);
    assert_eq!(count("malsim_calq_cursor_pullbacks_total"), stats.cursor_pullbacks);
    // Every executed event passed through the hook's dispatch path; none of
    // these closures carry a trace category.
    let dispatches = det.get("malsim_sched_dispatches_total").expect("dispatch family");
    assert_eq!(dispatches.get("untraced").and_then(Json::as_u64), Some(sim.executed()));
}

#[test]
fn jsonl_sink_emits_one_deterministic_sample_per_boundary() {
    let _g = registry();
    let path = temp("sink");
    telemetry::set_jsonl_sink(&path).expect("sink opens");
    let cfg = QueueConfig { pool: PoolConfig::explicit(1), max_jobs: 1, ..QueueConfig::default() };
    let mut queue = JobQueue::new(cfg).expect("no journal configured");
    queue.submit(spec("atlas", "research", Priority::Normal, grid("a", 3))).expect("atlas fits");
    queue.run(|jp| Ok(sim_row(jp))).expect("run succeeds");
    telemetry::clear_jsonl_sink();

    let body = std::fs::read_to_string(&path).expect("sink file readable");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 3, "one sample per point boundary");
    for (i, line) in lines.iter().enumerate() {
        let doc = report::parse(line).expect("sample parses");
        assert_eq!(doc.get("sample").and_then(Json::as_u64), Some(i as u64 + 1));
        let det = doc.get("deterministic").expect("sample carries the deterministic section");
        assert!(det.get("malsim_points_completed_total").is_some());
    }
    // The final sample of a single-threaded run is the boundary-time view;
    // completed counts grow monotonically across samples.
    let last = report::parse(lines[2]).expect("last sample parses");
    assert_eq!(
        last.get("deterministic").and_then(|d| d.get("malsim_points_completed_total")).and_then(Json::as_u64),
        Some(3)
    );
}
