//! Integration: the Flame lifecycle end to end — MITM spread, scripted
//! collection, operator triage, air-gap ferrying, advisory response, and
//! the fleet-wide suicide.

use malsim::prelude::*;
use malsim_kernel::time::SimDuration;
use malsim_malware::flame::candc::StolenData;
use malsim_os::fs::FileData;
use malsim_os::path::WinPath;

fn flame_lan(seed: u64, n: usize) -> (World, WorldSim, Pki) {
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(n);
    let pki = Pki::install(&mut world);
    pki.arm_flame(&mut world, &mut sim, 22, 80);
    (world, sim, pki)
}

#[test]
fn mitm_spread_saturates_an_unprotected_lan() {
    let (mut world, mut sim, _pki) = flame_lan(1, 10);
    flame::client::infect_host(&mut world, &mut sim, HostId::new(0), "seed");
    flame::mitm::snack_claim_wpad(&mut world, &mut sim, HostId::new(0));
    activity::schedule_update_checks(
        &mut sim,
        (0..10).map(HostId::new).collect(),
        SimDuration::from_hours(24),
    );
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(2));
    assert_eq!(world.campaigns.flame_clients.len(), 10);
    assert_eq!(sim.metrics.counter("flame.mitm_infections"), 9);
}

#[test]
fn advisory_rollout_halts_the_spread_mid_campaign() {
    let (mut world, mut sim, pki) = flame_lan(2, 8);
    flame::client::infect_host(&mut world, &mut sim, HostId::new(0), "seed");
    flame::mitm::snack_claim_wpad(&mut world, &mut sim, HostId::new(0));
    activity::schedule_update_checks(
        &mut sim,
        (0..8).map(HostId::new).collect(),
        SimDuration::from_hours(24),
    );
    // Day 2: only some hosts have fallen; the advisory ships fleet-wide.
    sim.run_until(&mut world, sim.now() + SimDuration::from_hours(30));
    let infected_at_advisory = world.campaigns.flame_clients.len();
    assert!(infected_at_advisory < 8, "spread still in progress");
    for i in 0..8 {
        pki.apply_advisory(&mut world, HostId::new(i));
    }
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(5));
    assert_eq!(
        world.campaigns.flame_clients.len(),
        infected_at_advisory,
        "no new infections after the advisory"
    );
}

#[test]
fn collection_pipeline_delivers_triaged_content_to_attack_center() {
    let (mut world, mut sim, _pki) = flame_lan(3, 3);
    for i in 0..3 {
        let h = HostId::new(i);
        world.hosts[h]
            .fs
            .write(
                &WinPath::new(r"C:\Users\user\Documents\secret.docx"),
                FileData::Bytes(vec![0; 250_000]),
                sim.now(),
            )
            .unwrap();
        world.hosts[h]
            .fs
            .write(
                &WinPath::new(r"C:\Users\user\Documents\shopping.txt"),
                FileData::Bytes(vec![0; 250_000]),
                sim.now(),
            )
            .unwrap();
        flame::client::infect_host(&mut world, &mut sim, h, "seed");
    }
    activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(1));
    let platform = world.campaigns.flame_platform.as_ref().unwrap();
    let contents: Vec<&StolenData> = platform
        .attack_center
        .retrieved
        .iter()
        .filter(|d| matches!(d, StolenData::FileContent { .. }))
        .collect();
    assert_eq!(contents.len(), 3, "one juicy file per host");
    assert!(contents
        .iter()
        .all(|d| matches!(d, StolenData::FileContent { path, .. } if path.ends_with(".docx"))));
    // Sysinfo from FLASK also arrived.
    assert!(platform.attack_center.retrieved.iter().any(|d| matches!(d, StolenData::SystemInfo { .. })));
    // Cleanup kept servers empty.
    assert!(platform.servers.iter().all(|s| s.entries.is_empty()));
}

#[test]
fn bluetooth_module_maps_social_surroundings() {
    use malsim_net::bluetooth::{Radio, RadioKind};
    let (mut world, mut sim, _pki) = flame_lan(4, 1);
    let h = HostId::new(0);
    world.hosts[h].config.bluetooth = true;
    world.bluetooth = malsim_net::bluetooth::BluetoothPlane::new(10.0);
    let host_radio = world.bluetooth.add(Radio {
        kind: RadioKind::HostAdapter,
        name: "victim-pc".into(),
        x: 0.0,
        y: 0.0,
        discoverable: false,
        contacts: vec![],
    });
    world.radio_of.insert(h, host_radio);
    world.bluetooth.add(Radio {
        kind: RadioKind::Phone,
        name: "director-phone".into(),
        x: 3.0,
        y: 0.0,
        discoverable: true,
        contacts: vec!["minister".into(), "deputy".into()],
    });
    flame::client::infect_host(&mut world, &mut sim, h, "seed");
    flame::client::activity_cycle(&mut world, &mut sim, h);
    // The host beacons (discoverable) and harvested the phone's contacts.
    assert!(world.bluetooth.radio(host_radio).unwrap().discoverable);
    let platform = world.campaigns.flame_platform.as_ref().unwrap();
    let mut all_data: Vec<StolenData> = platform.attack_center.retrieved.clone();
    for server in &platform.servers {
        for entry in &server.entries {
            all_data.push(platform.attack_center.decrypt_entry(entry));
        }
    }
    let found = all_data.iter().any(|d| {
        matches!(d, StolenData::BluetoothSurvey { devices, contacts, .. }
            if devices.contains(&"director-phone".to_owned()) && contacts.len() == 2)
    });
    assert!(found, "bluetooth survey uploaded");
}

#[test]
fn air_gap_ferry_and_suicide_interact_correctly() {
    let (mut world, mut sim, _pki) = flame_lan(5, 2);
    // Protected zone with one infected machine holding documents.
    let airgap = world.topology.add_zone("protected", false);
    let mut iso = malsim_os::host::Host::new(
        "vault-pc",
        malsim_os::host::WindowsVersion::Xp,
        malsim_os::host::HostRole::Workstation,
        sim.now(),
    );
    iso.config.internet_access = false;
    let vault = world.hosts.push(iso);
    world.topology.place(vault, airgap);
    world.hosts[vault]
        .fs
        .write(&WinPath::new(r"C:\vault\plans.pdf"), FileData::Bytes(vec![0; 123_000]), sim.now())
        .unwrap();
    flame::client::infect_host(&mut world, &mut sim, HostId::new(0), "seed");
    flame::client::infect_host(&mut world, &mut sim, vault, "usb");
    let usb = world.usb_drives.push(malsim_os::usb::UsbDrive::new("courier"));
    activity::schedule_usb_courier(&mut sim, usb, vec![HostId::new(0), vault], SimDuration::from_hours(12));
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(3));
    assert!(sim.metrics.counter("flame.usb_ferried_uploads") >= 1, "vault data escaped");
    // Suicide: the online host dies on its next beacon; the vault host has
    // no C&C path, so (as the paper implies for isolated clients) it only
    // dies if it ever reconnects — here it lingers.
    flame::suicide::broadcast_kill(&mut world, &mut sim);
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(1));
    assert!(!world.campaigns.flame_clients.contains_key(&HostId::new(0)));
    assert!(world.campaigns.flame_clients.contains_key(&vault), "air-gapped client never got the kill");
}
