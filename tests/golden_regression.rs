//! Integration: the golden-snapshot regression suite.
//!
//! Every experiment E1–E13 regenerates its headline rows at the documented
//! EXPERIMENTS.md scale and must match the canonical JSON checked in under
//! `tests/golden/` byte-for-byte. On drift the failure message lists each
//! changed field with its path, expected value, and live value.
//!
//! Re-record after an intended change with:
//!
//! ```sh
//! MALSIM_BLESS=1 cargo test --test golden_regression
//! ```
//!
//! and review the resulting `git diff` — moved headline numbers are the
//! point of this suite, not noise.

use malsim::prelude::*;

/// Every experiment, one golden each. Collects all drift before failing so
/// a broken substrate reports the full blast radius at once.
#[test]
fn experiments_match_golden_snapshots() {
    // With `MALSIM_METRICS=1` the whole suite runs with the telemetry plane
    // armed, proving the goldens stay byte-identical while every kernel
    // dispatch and job counter is being recorded (CI's `telemetry` job).
    telemetry::arm_if_env();
    let threads = sweep::threads_from_env();
    let mut failures = Vec::new();
    for spec in experiments::golden_specs() {
        let live = spec.run(threads);
        if let Err(report) = golden::check(spec.name, &live) {
            failures.push(report);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} golden snapshots drifted:\n\n{}",
        failures.len(),
        experiments::golden_specs().len(),
        failures.join("\n\n")
    );
}

/// The registry stays in lockstep with the checked-in snapshot files: no
/// orphaned goldens, no experiment without one.
#[test]
fn golden_directory_matches_the_registry() {
    if golden::bless_requested() {
        // While blessing, files are being (re)written; skip the inventory.
        return;
    }
    let mut expected: Vec<String> =
        experiments::golden_specs().iter().map(|s| format!("{}.json", s.name)).collect();
    expected.sort();
    let mut on_disk: Vec<String> = std::fs::read_dir(golden::golden_dir())
        .expect("golden dir exists — record snapshots with MALSIM_BLESS=1")
        .map(|e| e.expect("readable dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, expected, "tests/golden/ out of sync with experiments::golden_specs()");
}

/// The harness actually bites: a perturbed copy of a golden fails the diff
/// with a path-qualified report (the "deliberate perturbation" check from
/// the issue, kept as a permanent test).
#[test]
fn perturbed_golden_is_caught_with_a_readable_report() {
    if golden::bless_requested() {
        // While blessing a fresh checkout the snapshot may not exist yet.
        return;
    }
    let text = std::fs::read_to_string(golden::golden_path("e9_shamoon_wipe"))
        .expect("e9 golden exists — record snapshots with MALSIM_BLESS=1");
    let golden_value = report::parse(&text).expect("golden parses");
    let mut perturbed = golden_value.clone();
    let Json::Obj(ref mut pairs) = perturbed else { panic!("e9 golden is an object") };
    let bricked = pairs.iter_mut().find(|(k, _)| k == "bricked").expect("has bricked");
    bricked.1 = Json::U64(1);
    let drift = report::diff(&golden_value, &perturbed);
    assert_eq!(drift.len(), 1, "{drift:?}");
    assert!(drift[0].starts_with("at $.bricked: expected "), "{drift:?}");
    assert!(drift[0].ends_with(", got 1"), "{drift:?}");
}
