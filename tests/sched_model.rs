//! Differential model test for the calendar-queue scheduler.
//!
//! The rewrite of `kernel::sched` onto a bucketed calendar queue is proven
//! here against a deliberately naive reference model: a
//! `BTreeMap<(SimTime, u64), Event>` whose correctness is self-evident from
//! the map's sorted iteration order. Seeded random programs of
//! schedule / schedule-in-the-past / cancel / cancel-twice /
//! reentrant-schedule / repeating ops run through both schedulers, and the
//! full observable record — firing order with timestamps, every `cancel`
//! return value, the executed-event count — must match exactly, for every
//! seed. Any divergence in bucket math, tombstone reaping, cursor movement,
//! or generation checks shows up as a differing log.
//!
//! Debug runs cover a few hundred seeds to stay quick; release runs (CI's
//! `sched-model` job) cover 1200.

use std::collections::BTreeMap;

use malsim::prelude::*;

// ---------------------------------------------------------------------------
// Program representation
// ---------------------------------------------------------------------------

/// One operation of a generated scheduler program. `Nested` ops run from
/// inside a firing event (reentrancy); handle targets index the list of
/// handles issued so far, modulo its length at execution time.
#[derive(Clone, Debug)]
enum Op {
    /// `schedule_in(delay)` of an event that logs its firing, then executes
    /// the nested ops.
    Schedule { delay_ms: u64, nested: Vec<Op> },
    /// `schedule_at(now - back_ms)`: always in the past (or at now), so it
    /// exercises the clamp-to-now path.
    SchedulePast { back_ms: u64, nested: Vec<Op> },
    /// Cancel the `target % issued`-th handle, logging the returned bool.
    Cancel { target: usize },
    /// `schedule_every(period)` firing `fires` times before stopping.
    Every { period_ms: u64, fires: u32 },
}

/// Deterministic splitmix64, the same generator idiom the script fuzzer uses.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn gen_ops(g: &mut Gen, count: usize, depth: u32) -> Vec<Op> {
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let roll = g.below(100);
        let op = if roll < 40 {
            Op::Schedule { delay_ms: g.below(5_000), nested: gen_nested(g, depth) }
        } else if roll < 50 {
            Op::SchedulePast { back_ms: g.below(10_000), nested: gen_nested(g, depth) }
        } else if roll < 80 {
            Op::Cancel { target: g.below(64) as usize }
        } else if roll < 88 {
            // Cancel-twice: the second call must report false on both sides.
            let target = g.below(64) as usize;
            ops.push(Op::Cancel { target });
            Op::Cancel { target }
        } else {
            Op::Every { period_ms: 1 + g.below(700), fires: 1 + g.below(5) as u32 }
        };
        ops.push(op);
    }
    ops
}

fn gen_nested(g: &mut Gen, depth: u32) -> Vec<Op> {
    if depth == 0 {
        return Vec::new();
    }
    let count = g.below(3) as usize;
    gen_ops(g, count, depth - 1)
}

// ---------------------------------------------------------------------------
// Shared observable log
// ---------------------------------------------------------------------------

/// Everything both schedulers must agree on, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Obs {
    Scheduled { tag: u64 },
    Fired { tag: u64, at_ms: u64 },
    Cancelled { target: usize, stopped: bool },
    CancelNoHandles,
}

// ---------------------------------------------------------------------------
// Real side: the calendar-queue Sim
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RealWorld {
    log: Vec<Obs>,
    handles: Vec<EventHandle>,
    next_tag: u64,
}

fn exec_real(op: &Op, w: &mut RealWorld, sim: &mut Sim<RealWorld>) {
    match op {
        Op::Schedule { delay_ms, nested } => {
            real_schedule_at(sim.now() + SimDuration::from_millis(*delay_ms), nested, w, sim);
        }
        Op::SchedulePast { back_ms, nested } => {
            let at = SimTime::from_millis(sim.now().as_millis().saturating_sub(*back_ms));
            real_schedule_at(at, nested, w, sim);
        }
        Op::Cancel { target } => {
            if w.handles.is_empty() {
                w.log.push(Obs::CancelNoHandles);
            } else {
                let i = target % w.handles.len();
                let stopped = sim.cancel(w.handles[i]);
                w.log.push(Obs::Cancelled { target: i, stopped });
            }
        }
        Op::Every { period_ms, fires } => {
            let tag = w.next_tag;
            w.next_tag += 1;
            w.log.push(Obs::Scheduled { tag });
            let mut left = *fires;
            let h = sim.schedule_every(SimDuration::from_millis(*period_ms), move |w: &mut RealWorld, s| {
                w.log.push(Obs::Fired { tag, at_ms: s.now().as_millis() });
                left -= 1;
                left > 0
            });
            w.handles.push(h);
        }
    }
}

fn real_schedule_at(at: SimTime, nested: &[Op], w: &mut RealWorld, sim: &mut Sim<RealWorld>) {
    let tag = w.next_tag;
    w.next_tag += 1;
    w.log.push(Obs::Scheduled { tag });
    let nested = nested.to_vec();
    let h = sim.schedule_at(at, move |w: &mut RealWorld, s| {
        w.log.push(Obs::Fired { tag, at_ms: s.now().as_millis() });
        for op in &nested {
            exec_real(op, w, s);
        }
    });
    w.handles.push(h);
}

fn run_real(program: &[Op]) -> (Vec<Obs>, u64, QueueStats) {
    let mut sim: Sim<RealWorld> = Sim::new(SimTime::EPOCH, 1);
    let mut w = RealWorld::default();
    for op in program {
        exec_real(op, &mut w, &mut sim);
    }
    sim.run(&mut w);
    (w.log, sim.executed(), sim.queue_stats())
}

// ---------------------------------------------------------------------------
// Model side: BTreeMap reference scheduler
// ---------------------------------------------------------------------------

enum MEvent {
    Once { tag: u64, nested: Vec<Op>, handle: usize },
    Every { tag: u64, period_ms: u64, left: u32, handle: usize },
}

/// The naive reference: a sorted map from `(time, seq)` to the event, plus a
/// per-handle record of the key currently pending (if any). `cancel` is a map
/// removal; repeating events re-insert under a fresh seq and re-point their
/// handle, which models "the handle stays cancellable across periods".
#[derive(Default)]
struct ModelSim {
    now_ms: u64,
    next_seq: u64,
    queue: BTreeMap<(u64, u64), MEvent>,
    pending_key: Vec<Option<(u64, u64)>>,
    log: Vec<Obs>,
    next_tag: u64,
    executed: u64,
}

impl ModelSim {
    fn schedule(&mut self, at_ms: u64, nested: Vec<Op>) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.log.push(Obs::Scheduled { tag });
        let key = (at_ms.max(self.now_ms), self.next_seq);
        self.next_seq += 1;
        let handle = self.pending_key.len();
        self.pending_key.push(Some(key));
        self.queue.insert(key, MEvent::Once { tag, nested, handle });
    }

    fn exec(&mut self, op: &Op) {
        match op {
            Op::Schedule { delay_ms, nested } => self.schedule(self.now_ms + delay_ms, nested.clone()),
            Op::SchedulePast { back_ms, nested } => {
                self.schedule(self.now_ms.saturating_sub(*back_ms), nested.clone())
            }
            Op::Cancel { target } => {
                if self.pending_key.is_empty() {
                    self.log.push(Obs::CancelNoHandles);
                } else {
                    let i = target % self.pending_key.len();
                    let stopped = match self.pending_key[i].take() {
                        Some(key) => self.queue.remove(&key).is_some(),
                        None => false,
                    };
                    self.log.push(Obs::Cancelled { target: i, stopped });
                }
            }
            Op::Every { period_ms, fires } => {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.log.push(Obs::Scheduled { tag });
                let key = (self.now_ms + period_ms, self.next_seq);
                self.next_seq += 1;
                let handle = self.pending_key.len();
                self.pending_key.push(Some(key));
                self.queue.insert(key, MEvent::Every { tag, period_ms: *period_ms, left: *fires, handle });
            }
        }
    }

    fn run(&mut self) {
        while let Some((&key, _)) = self.queue.iter().next() {
            let event = self.queue.remove(&key).expect("key just observed");
            self.now_ms = key.0;
            self.executed += 1;
            match event {
                MEvent::Once { tag, nested, handle } => {
                    self.pending_key[handle] = None;
                    self.log.push(Obs::Fired { tag, at_ms: self.now_ms });
                    for op in &nested {
                        self.exec(op);
                    }
                }
                MEvent::Every { tag, period_ms, left, handle } => {
                    self.log.push(Obs::Fired { tag, at_ms: self.now_ms });
                    if left > 1 {
                        let key = (self.now_ms + period_ms, self.next_seq);
                        self.next_seq += 1;
                        self.pending_key[handle] = Some(key);
                        self.queue.insert(key, MEvent::Every { tag, period_ms, left: left - 1, handle });
                    } else {
                        self.pending_key[handle] = None;
                    }
                }
            }
        }
    }
}

fn run_model(program: &[Op]) -> (Vec<Obs>, u64) {
    let mut m = ModelSim::default();
    for op in program {
        m.exec(op);
    }
    m.run();
    (m.log, m.executed)
}

// ---------------------------------------------------------------------------
// The differential driver
// ---------------------------------------------------------------------------

fn seeds() -> u64 {
    if cfg!(debug_assertions) {
        200
    } else {
        1200
    }
}

fn check_seed(seed: u64) {
    let mut g = Gen(seed.wrapping_mul(0x9e37_79b9).wrapping_add(seed));
    let top_level = 4 + g.below(40) as usize;
    let program = gen_ops(&mut g, top_level, 2);
    let (real_log, real_executed, real_stats) = run_real(&program);
    let (model_log, model_executed) = run_model(&program);
    if real_log != model_log {
        let first = real_log
            .iter()
            .zip(model_log.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(real_log.len().min(model_log.len()));
        panic!(
            "seed {seed}: logs diverge at entry {first}\n  real:  {:?}\n  model: {:?}\n  program: {:?}",
            real_log.get(first),
            model_log.get(first),
            program,
        );
    }
    assert_eq!(real_executed, model_executed, "seed {seed}: executed-event counts diverge");
    // The queue's structural telemetry is pinned by the model too: every
    // cancel that reported `stopped` tombstoned a queued node, and a run
    // that drains the queue reaps every tombstone — lazily, in bulk at the
    // drain, or during a rebuild. (Reserved-slot cancels, which are freed
    // without a reap, cannot occur here: only `Once` events run nested ops,
    // so no cancel ever lands on a mid-fire repeating event.)
    let stopped_cancels =
        model_log.iter().filter(|o| matches!(o, Obs::Cancelled { stopped: true, .. })).count() as u64;
    assert_eq!(
        real_stats.tombstone_reaps, stopped_cancels,
        "seed {seed}: tombstone reaps diverge from the model's stopped-cancel count",
    );
}

#[test]
fn calendar_queue_matches_btreemap_model_across_seeds() {
    for seed in 0..seeds() {
        check_seed(seed);
    }
}

/// Programs that slam one instant with many events: batch-drain order and
/// budget math inside a same-timestamp run are the most bucket-layout
/// sensitive paths, so they get their own seed sweep with tighter time
/// ranges (lots of ties).
#[test]
fn tie_heavy_programs_match_the_model() {
    for seed in 0..seeds() / 2 {
        let mut g = Gen(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let n = 4 + g.below(30) as usize;
        let mut program = Vec::new();
        for _ in 0..n {
            // Delays drawn from {0, 100, 200, 300}: near-guaranteed ties.
            let roll = g.below(10);
            if roll < 7 {
                program.push(Op::Schedule { delay_ms: g.below(4) * 100, nested: gen_nested(&mut g, 1) });
            } else if roll < 9 {
                program.push(Op::Cancel { target: g.below(16) as usize });
            } else {
                program.push(Op::Every { period_ms: 100, fires: 1 + g.below(4) as u32 });
            }
        }
        let (real_log, _, _) = run_real(&program);
        let (model_log, _) = run_model(&program);
        assert_eq!(real_log, model_log, "seed {seed} diverged (tie-heavy)");
    }
}

/// Long-horizon mix: a few events far in the future force the calendar
/// queue's sparse-scan jump and cursor pull-back paths while near-term
/// events keep arriving.
#[test]
fn sparse_far_future_programs_match_the_model() {
    for seed in 0..seeds() / 4 {
        let mut g = Gen(seed.wrapping_add(0xdead_beef).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut program = vec![Op::Schedule {
            delay_ms: 1 << (20 + g.below(14)), // ~17 min .. ~4 months out
            nested: vec![Op::Schedule { delay_ms: g.below(50), nested: Vec::new() }],
        }];
        let extra = 10 + g.below(20) as usize;
        program.extend(gen_ops(&mut g, extra, 1));
        let (real_log, _, _) = run_real(&program);
        let (model_log, _) = run_model(&program);
        assert_eq!(real_log, model_log, "seed {seed} diverged (sparse)");
    }
}
