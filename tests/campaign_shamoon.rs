//! Integration: the Shamoon campaign — spread, the date trigger, the wipe
//! mechanics, reporting, and the defensive counterfactuals.

use malsim::prelude::*;
use malsim_kernel::time::{SimDuration, SimTime};
use malsim_os::fs::FileData;
use malsim_os::path::WinPath;

fn aug_2012_fleet(seed: u64, zones: usize, hosts: usize) -> (World, WorldSim, Pki) {
    let mut builder = ScenarioBuilder::new(seed);
    builder.start(SimTime::from_utc(2012, 8, 13, 6, 0, 0));
    let (mut world, sim) = builder.enterprise(zones, hosts);
    let pki = Pki::install(&mut world);
    pki.arm_shamoon(&mut world);
    world.campaigns.shamoon.trigger_at = Some(shamoon::aramco_trigger());
    (world, sim, pki)
}

#[test]
fn wipe_happens_exactly_at_the_hardcoded_date() {
    let (mut world, mut sim, _pki) = aug_2012_fleet(1, 1, 20);
    shamoon::dropper::infect_host(&mut world, &mut sim, HostId::new(1), "phish");
    // One minute before the trigger: fleet infected but intact.
    sim.run_until(&mut world, SimTime::from_utc(2012, 8, 15, 8, 7, 0));
    assert!(world.campaigns.shamoon.infections.len() > 15, "two days of share spread");
    assert_eq!(world.bricked_count(), 0);
    // One minute after: every infected host is bricked.
    sim.run_until(&mut world, SimTime::from_utc(2012, 8, 15, 8, 9, 0));
    assert_eq!(world.bricked_count(), world.campaigns.shamoon.infections.len());
    assert_eq!(world.campaigns.shamoon.wiped_count(), world.campaigns.shamoon.infections.len());
}

#[test]
fn wiped_files_show_the_truncated_fragment_bug() {
    let (mut world, mut sim, _pki) = aug_2012_fleet(2, 1, 2);
    let victim = HostId::new(1);
    let doc = WinPath::new(r"C:\Users\user\Documents\ledger.xls");
    world.hosts[victim].fs.write(&doc, FileData::Bytes(vec![0x11; 800_000]), sim.now()).unwrap();
    shamoon::dropper::infect_host(&mut world, &mut sim, victim, "phish");
    sim.run_until(&mut world, shamoon::aramco_trigger() + SimDuration::from_mins(5));
    let node = world.hosts[victim].fs.read(&doc).unwrap();
    let FileData::Bytes(bytes) = &node.data else { panic!("overwritten file is bytes") };
    assert_eq!(bytes.len(), shamoon::wiper::BUGGY_FRAGMENT_LEN);
    assert!(bytes.len() < shamoon::wiper::FULL_PATTERN_LEN, "the coding-mistake model");
    // Target lists written.
    assert!(world.hosts[victim].fs.exists(&WinPath::expand(r"%system%\f1.inf")));
    assert!(world.hosts[victim].fs.exists(&WinPath::expand(r"%system%\f2.inf")));
}

#[test]
fn reports_phone_home_with_tallies() {
    let (mut world, mut sim, _pki) = aug_2012_fleet(3, 1, 5);
    shamoon::dropper::infect_host(&mut world, &mut sim, HostId::new(1), "phish");
    sim.run_until(&mut world, shamoon::aramco_trigger() + SimDuration::from_hours(1));
    let reports = &world.campaigns.shamoon.reports;
    assert_eq!(reports.len(), world.campaigns.shamoon.infections.len());
    assert!(reports.iter().all(|r| r.mbr_destroyed));
    assert!(reports.iter().any(|r| r.files_overwritten > 0));
}

#[test]
fn without_the_signed_driver_hosts_survive_with_data_loss() {
    let mut builder = ScenarioBuilder::new(4);
    builder.start(SimTime::from_utc(2012, 8, 14, 0, 0, 0));
    let (mut world, mut sim) = builder.enterprise(1, 5);
    let _pki = Pki::install(&mut world); // NOT arming shamoon's driver
    world.campaigns.shamoon.trigger_at = Some(shamoon::aramco_trigger());
    shamoon::dropper::infect_host(&mut world, &mut sim, HostId::new(1), "phish");
    sim.run_until(&mut world, shamoon::aramco_trigger() + SimDuration::from_hours(1));
    assert_eq!(world.bricked_count(), 0, "no raw-disk capability, no MBR destruction");
    assert!(world.campaigns.shamoon.wiped_count() > 0, "file overwrite still happened");
}

#[test]
fn av_signature_shipment_models_post_analysis_detection() {
    use malsim_defense::av::{Antivirus, ScanVerdict};
    let carrier = shamoon::builder::build_trksvr((0xFB, 0x91, 0x04), 1_345_000_000);
    let mut av = Antivirus::new(10.0);
    // Pre-analysis: heuristics already dislike the shape.
    assert!(av.scan_image(&carrier).is_detection());
    // Post-analysis: vendors ship the exact signature.
    av.add_signature("W32.Disttrack", carrier.content_hash());
    assert!(
        matches!(av.scan_image(&carrier), ScanVerdict::SignatureMatch { name } if name == "W32.Disttrack")
    );
}

#[test]
fn disabling_shares_contains_the_spread() {
    let (mut world, mut sim, _pki) = aug_2012_fleet(5, 1, 10);
    for i in 0..11 {
        world.hosts[HostId::new(i)].config.file_sharing = false;
    }
    shamoon::dropper::infect_host(&mut world, &mut sim, HostId::new(1), "phish");
    sim.run_until(&mut world, shamoon::aramco_trigger() + SimDuration::from_hours(1));
    assert_eq!(world.campaigns.shamoon.infections.len(), 1, "patient zero only");
    assert_eq!(world.bricked_count(), 1);
}
