//! Integration: the full Stuxnet chain across crates — USB seeding, LAN
//! spread, rootkit, Step 7 hooking, PLC implant, physical destruction, and
//! the defensive counterfactuals.

use malsim::prelude::*;
use malsim_kernel::time::SimDuration;
use malsim_os::usb::UsbDrive;

fn e1(seed: u64) -> experiments::E1Result {
    experiments::e1_stuxnet_end_to_end(seed, 30)
}

#[test]
fn end_to_end_destroys_cascade_without_tripping_safety() {
    let r = e1(42);
    assert!(r.infected_hosts >= 2, "office spread plus the engineering station");
    assert!(r.plc_implanted);
    assert_eq!(r.destroyed, r.total_centrifuges, "cascade fully destroyed in 30 days");
    assert!(!r.safety_tripped, "telemetry replay must blind the safety system");
    assert_eq!(r.operator_anomalies, 0, "operator saw nothing abnormal");
    assert!(r.days_to_first_destruction.is_some());
}

#[test]
fn fully_patched_fleet_stops_the_chain() {
    let builder = {
        let mut b = ScenarioBuilder::new(42);
        b.patch_rate(1.0);
        b
    };
    let (mut world, mut sim, plant, office, station) = builder.natanz_site(4, 6);
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    let usb = world.usb_drives.push(UsbDrive::new("gift"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
    activity::schedule_usb_courier(&mut sim, usb, office.clone(), SimDuration::from_hours(6));
    let engineer = world.usb_drives.push(UsbDrive::new("stick"));
    activity::schedule_usb_courier(&mut sim, engineer, vec![office[0], station], SimDuration::from_hours(12));
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(20));
    assert!(world.campaigns.stuxnet.infections.is_empty(), "MS10-046 patch blocks the LNK vector");
    assert_eq!(world.plants[plant].cascade.destroyed_count(), 0);
}

#[test]
fn without_stolen_certificate_rootkit_fails_but_infection_proceeds() {
    let (mut world, mut sim, _plant, office, _station) = ScenarioBuilder::new(7).natanz_site(3, 4);
    let _pki = Pki::install(&mut world); // roots installed, but no stolen credential armed
    let usb = world.usb_drives.push(UsbDrive::new("gift"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
    world.hosts[office[0]].insert_usb(usb);
    stuxnet::infection::open_usb_in_explorer(&mut world, &mut sim, office[0]);
    assert!(world.campaigns.stuxnet.infections.contains_key(&office[0]));
    assert!(world.hosts[office[0]].drivers().is_empty(), "no signed drivers loaded");
    // The dropped module is visible (no rootkit to hide it) — AV-relevant.
    let module = malsim_os::path::WinPath::expand(r"%system%\oem7a.pnf");
    assert!(!world.hosts[office[0]].fs.read(&module).unwrap().hidden);
}

#[test]
fn rootkit_hides_module_when_armed() {
    let (mut world, mut sim, _plant, office, _station) = ScenarioBuilder::new(7).natanz_site(3, 4);
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    let usb = world.usb_drives.push(UsbDrive::new("gift"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
    world.hosts[office[0]].insert_usb(usb);
    stuxnet::infection::open_usb_in_explorer(&mut world, &mut sim, office[0]);
    let host = &world.hosts[office[0]];
    assert_eq!(host.drivers().len(), 2, "mrxcls + mrxnet");
    assert!(host.drivers().iter().all(|d| d.signer_subject.contains("Realtek")));
    let module = malsim_os::path::WinPath::expand(r"%system%\oem7a.pnf");
    assert!(host.fs.read(&module).unwrap().hidden);
}

#[test]
fn c2_records_ics_flag_for_engineering_stations() {
    let (mut world, mut sim, _plant, office, station) = ScenarioBuilder::new(9).natanz_site(2, 4);
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    pki.register_stuxnet_c2(&mut world);
    stuxnet::infection::infect_host(&mut world, &mut sim, office[0], "usb-lnk");
    stuxnet::infection::infect_host(&mut world, &mut sim, station, "usb-lnk");
    stuxnet::candc::check_in(&mut world, &mut sim, office[0]);
    stuxnet::candc::check_in(&mut world, &mut sim, station);
    let victims = &world.campaigns.stuxnet.candc.victims;
    // The station is air-gapped: only the office host reports.
    assert_eq!(victims.len(), 1);
    assert!(!victims[0].has_ics_software);
}

#[test]
fn step7_repair_blocked_until_library_restored() {
    use malsim_scada::plc::CodeBlock;
    use malsim_scada::step7::CommLibrary;
    let (mut world, mut sim, plant, _office, station) = ScenarioBuilder::new(3).natanz_site(2, 4);
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    stuxnet::infection::infect_host(&mut world, &mut sim, station, "usb-lnk");
    assert!(world.plants[plant].plc.is_infected());
    // Through the compromised library, the repair write is dropped.
    let repair = CodeBlock { name: "FC1869".into(), body: b"clean".to_vec(), attacker_written: false };
    {
        let p = &mut world.plants[plant];
        let lib = p.step7.comm_library.clone();
        assert!(!lib.write_block(&mut p.plc, repair.clone()));
        assert!(p.plc.is_infected());
        // Incident response restores the genuine library; the repair lands.
        p.step7.restore();
        assert!(CommLibrary::Genuine.write_block(&mut p.plc, repair));
    }
    // FC1869 is repaired; DB890 (config data) is still attacker-written, so
    // clean that too, then the PLC is healthy.
    {
        let p = &mut world.plants[plant];
        let db = CodeBlock { name: "DB890".into(), body: b"clean".to_vec(), attacker_written: false };
        assert!(CommLibrary::Genuine.write_block(&mut p.plc, db));
        assert!(!p.plc.is_infected());
    }
}
