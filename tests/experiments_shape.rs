//! Integration: the experiment harness produces paper-shaped results at
//! small scale — who wins, monotonic directions, and crossovers, not exact
//! magnitudes.

use malsim::prelude::*;

#[test]
fn e2_infection_falls_as_patch_rate_rises() {
    let rows = experiments::e2_zero_day_ablation(11, 40, 5, &[0.0, 0.5, 1.0]);
    assert_eq!(rows.len(), 3);
    assert!(rows[0].infected_fraction > 0.9, "unpatched LAN saturates: {rows:?}");
    assert!(rows[0].infected_fraction >= rows[1].infected_fraction, "more patches, fewer infections");
    assert!(rows[2].infected_fraction <= 0.05, "fully patched fleet resists: {rows:?}");
}

#[test]
fn e3_targeting_discipline_holds() {
    let rows = experiments::e3_plc_targeting(11, 10);
    let targeted = rows.iter().find(|r| r.configuration.contains("targeted")).unwrap();
    let wrong = rows.iter().find(|r| r.configuration.contains("wrong")).unwrap();
    assert!(targeted.armed && targeted.destroyed > 0);
    assert!(!wrong.armed && wrong.destroyed == 0);
}

#[test]
fn e4_mitm_is_the_difference_maker() {
    let rows = experiments::e4_wpad_mitm(11, &[8], 72);
    let without = rows.iter().find(|r| !r.mitm_active).unwrap();
    let with = rows.iter().find(|r| r.mitm_active).unwrap();
    assert!(without.infected_fraction <= 0.2, "seed only: {without:?}");
    assert!(with.infected_fraction >= 0.9, "mitm saturates the lan: {with:?}");
}

#[test]
fn e5_policy_matrix_matches_the_figure_3_story() {
    let rows = experiments::e5_cert_forgery(11);
    let by_policy = |needle: &str| rows.iter().find(|r| r.policy.contains(needle)).unwrap().accepted;
    assert!(by_policy("legacy"), "pre-advisory legacy verifier accepts the forgery");
    assert!(!by_policy("strict verifier"), "strict policy rejects");
    assert!(!by_policy("post-advisory"), "distrust kills it");
    assert!(by_policy("genuine"), "real updates still install");
}

#[test]
fn e6_domain_fanout_beats_single_domain_under_takedown() {
    let rows = experiments::e6_candc_resilience(11, 30, &[0.0, 0.5, 0.9, 1.0]);
    assert!((rows[0].reachable_many - 1.0).abs() < 1e-9);
    // At 50% takedown the many-domain platform stays near-fully reachable.
    assert!(rows[1].reachable_many > 0.9, "{rows:?}");
    // At 100% it finally dies.
    assert!(rows[3].reachable_many < 1e-9);
    // The strawman is all-or-nothing per run; at 1.0 it is always dead.
    assert_eq!(rows[3].reachable_single, 0.0);
}

#[test]
fn e7_dataflow_runs_and_cleans_up() {
    let r = experiments::e7_candc_dataflow(11, 10, 4, 7);
    assert!(r.bytes_uploaded > 0);
    assert!(r.attack_center_bytes > 0);
    assert!(r.entries_retrieved > 0);
    assert_eq!(r.entries_residual, 0, "30-minute cleanup leaves servers empty");
    assert!(r.bytes_per_server_week > 0.0);
}

#[test]
fn e8_triage_uploads_less_but_keeps_the_juice() {
    let rows = experiments::e8_exfil_ablation(11, 5, 4);
    let triage = rows.iter().find(|r| r.strategy.contains("triage")).unwrap();
    let greedy = rows.iter().find(|r| r.strategy.contains("everything")).unwrap();
    assert!(triage.bytes_uploaded < greedy.bytes_uploaded, "triage moves fewer bytes: {rows:?}");
    assert!(triage.juicy_bytes > 0, "but still gets the juicy documents");
    assert_eq!(triage.juicy_bytes, greedy.juicy_bytes, "no juicy content lost to triage");
}

#[test]
fn e9_small_scale_shamoon_shape() {
    let r = experiments::e9_shamoon_wipe(11, 4, 24, 2);
    assert_eq!(r.fleet, 4 * 25);
    // Seeded zones saturate; unseeded zones are untouched (zone isolation).
    assert_eq!(r.infected, 2 * 25);
    assert_eq!(r.bricked, r.infected);
    assert_eq!(r.reports, r.infected);
    assert!(r.hours_to_trigger > 24.0);
}

#[test]
fn e10_trend_matrix_has_paper_shape() {
    let profiles = experiments::e10_trend_matrix(11);
    assert_eq!(profiles.len(), 3);
    let stux = profiles.iter().find(|p| p.family == Family::Stuxnet).unwrap();
    let flame_p = profiles.iter().find(|p| p.family == Family::Flame).unwrap();
    let shamoon_p = profiles.iter().find(|p| p.family == Family::Shamoon).unwrap();
    assert!(stux.certified && flame_p.certified && shamoon_p.certified, "all three abuse certificates");
    assert!(flame_p.modular_updates > 0, "flame updates modules in the field");
    assert!(stux.sophistication > shamoon_p.sophistication, "the paper's amateur assessment");
    assert!(flame_p.sophistication > shamoon_p.sophistication);
}

#[test]
fn e11_aggressiveness_buys_detection() {
    let rows = experiments::e11_stealth_tradeoff(11, 15, &[1.0, 12.0]);
    let quiet = &rows[0];
    let loud = &rows[1];
    assert_eq!(quiet.alerts, 0, "stealthy activity stays under the budget");
    assert!(loud.alerts > 0, "aggressive activity trips behavioural AV");
}

#[test]
fn e12_suicide_defeats_forensics() {
    let rows = experiments::e12_suicide_forensics(11, 6);
    let before = rows.iter().find(|r| r.scenario.contains("before")).unwrap();
    let after = rows.iter().find(|r| r.scenario.contains("after")).unwrap();
    assert!(before.recovery_score > 0.9);
    assert!(after.recovery_score < 0.1);
    assert!(after.server_logs_remaining < before.server_logs_remaining);
}

#[test]
fn e13_ferry_recovers_documents_until_full_takedown() {
    let rows = experiments::e13_takedown_resilience(11, 10, 7, &[0.0, 0.5, 0.9, 1.0]);
    assert_eq!(rows.len(), 4);
    // The direct path degrades monotonically as servers fall.
    for pair in rows.windows(2) {
        assert!(
            pair[1].direct_bytes_week <= pair[0].direct_bytes_week,
            "direct exfiltration must not grow as the sinkhole widens"
        );
    }
    let (full, half, deep, total) = (&rows[0], &rows[1], &rows[2], &rows[3]);
    // No takedown: everything flows directly, the stick carries nothing.
    assert!((full.reachable_clients - 1.0).abs() < f64::EPSILON);
    assert_eq!(full.ferried_bytes_week, 0.0);
    assert_eq!(full.stick_backlog, 0);
    // Half the servers gone: the 80-domain fan-out absorbs it (Fig. 4).
    assert!((half.reachable_clients - 1.0).abs() < f64::EPSILON);
    assert!(half.direct_bytes_week > 0.9 * full.direct_bytes_week);
    // Deep takedown: some clients lose every path, but the USB
    // store-and-forward ferry recovers their documents — nothing strands.
    assert!(deep.reachable_clients < 1.0 && deep.reachable_clients > 0.0);
    assert!(deep.ferried_bytes_week > 0.0, "blocked documents travel by stick");
    assert_eq!(deep.stick_backlog, 0, "full document recovery below 100% takedown");
    assert!(deep.total_bytes_week > 0.8 * full.total_bytes_week, "graceful degradation");
    // Full takedown: nothing flows; documents strand in the hidden database.
    assert_eq!(total.reachable_clients, 0.0);
    assert_eq!(total.direct_bytes_week, 0.0);
    assert_eq!(total.ferried_bytes_week, 0.0);
    assert!(total.stick_backlog > 0, "documents strand on the stick");
}
