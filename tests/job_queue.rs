//! Job-queue integration tests: the three-tenant acceptance scenario
//! (cancellation, poisoning with bounded retries, watchdog truncation,
//! typed load-shedding, SIGKILL-style journal resume), tenant isolation
//! under cancellation, cross-tenant result-cache dedup, weighted-fair
//! interleaving, and journal damage/identity handling.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use malsim::jobs::{
    CancelToken, JobBudget, JobQueue, JobSpec, JobStatus, Priority, QueueConfig, RejectReason, SeedPolicy,
};
use malsim::report::Json;
use malsim::sweep::{PointRun, PoolConfig, ScriptFaultInfo, Truncation};
use malsim::{jobs, scenario::ScenarioBuilder, script_api};
use malsim_kernel::sched::Sim;
use malsim_kernel::time::{SimDuration, SimTime};

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("malsim-jobs-{tag}-{}.jnl", std::process::id()))
}

/// A cheap deterministic point: a tiny event-driven accumulator simulation
/// seeded from the point, honouring the job's watchdog so over-budget jobs
/// truncate exactly like real experiments do.
fn sim_row(jp: &jobs::JobPoint<'_>) -> PointRun<Json> {
    let events = jp.params.get("events").and_then(Json::as_u64).unwrap_or(8);
    let mut sim: Sim<u64> = Sim::new(SimTime::EPOCH, jp.seed());
    for i in 0..events {
        sim.schedule_in(SimDuration::from_secs(i + 1), |acc: &mut u64, sim: &mut Sim<u64>| {
            let draw: u64 = sim.rng.range(0..65_536u64);
            *acc = acc.wrapping_mul(31).wrapping_add(draw);
        });
    }
    let mut acc = jp.seed();
    let until = SimTime::EPOCH + SimDuration::from_secs(events + 2);
    let run = sim.run_until_watched(&mut acc, until, jp.watchdog);
    PointRun {
        result: Json::obj([
            ("params", jp.params.clone()),
            ("acc", Json::U64(acc)),
            ("executed", Json::U64(run.executed)),
        ]),
        truncation: Truncation::from_stop(run.reason),
        violations: Vec::new(),
    }
}

/// The shared point function: dispatches on the grid point's `kind` so one
/// queue can mix benign simulations, panicking points, and hostile scripts.
fn eval(jp: &jobs::JobPoint<'_>) -> Result<PointRun<Json>, ScriptFaultInfo> {
    match jp.params.get("kind").and_then(Json::as_str) {
        Some("panic") => panic!("injected point failure"),
        Some("script") => {
            let src = jp.params.get("src").and_then(Json::as_str).expect("script points carry src");
            let (mut world, mut sim) = ScenarioBuilder::new(jp.seed()).office_lan(2);
            script_api::run_source(src, &mut world, &mut sim).map(|r| PointRun::complete(r.row()))
        }
        _ => Ok(sim_row(jp)),
    }
}

fn sim_grid(points: u64, events: u64) -> Vec<Json> {
    (0..points)
        .map(|t| Json::obj([("kind", "sim".into()), ("events", Json::U64(events)), ("tag", Json::U64(t))]))
        .collect()
}

fn spec(job_id: &str, tenant: &str, grid: Vec<Json>) -> JobSpec {
    JobSpec {
        job_id: job_id.to_owned(),
        tenant: tenant.to_owned(),
        experiment: "jobs-it",
        base_seed: 40,
        seed_policy: SeedPolicy::Derived,
        priority: Priority::Normal,
        budget: JobBudget::default(),
        grid,
    }
}

/// The acceptance scenario: four tenants — benign, cancelled mid-grid,
/// poisoned with bounded retries, over-budget — plus a shed fifth; then a
/// SIGKILL-style journal truncation and resume at 1/2/8 workers.
#[test]
fn three_tenant_queue_with_kill_and_resume() {
    let journal = temp("acceptance");
    let atlas = spec("atlas", "tenant-a", sim_grid(4, 8));
    let mut bolt = spec("bolt", "tenant-b", sim_grid(6, 8));
    bolt.base_seed = 41;
    let mut crow = spec("crow", "tenant-c", sim_grid(4, 8));
    crow.base_seed = 42;
    crow.grid[2] = Json::obj([("kind", "panic".into())]);
    crow.budget.retries = 2;
    crow.budget.retry_backoff_ms = 1;
    let mut dune = spec("dune", "tenant-d", sim_grid(3, 50));
    dune.base_seed = 43;
    dune.budget.event_budget = Some(5);

    let cfg = |journal: &PathBuf, resume: bool, threads: usize| QueueConfig {
        pool: PoolConfig::explicit(threads),
        max_jobs: 4,
        journal: Some(journal.clone()),
        resume,
        ..QueueConfig::default()
    };
    let mut queue = JobQueue::new(cfg(&journal, false, 2)).unwrap();
    queue.submit(atlas.clone()).unwrap();
    let bolt_handle = queue.submit(bolt.clone()).unwrap();
    queue.submit(crow.clone()).unwrap();
    queue.submit(dune.clone()).unwrap();

    // Load-shedding: the queue is at capacity; the fifth tenant gets a
    // typed rejection, not unbounded queueing.
    let shed = queue.submit(spec("shed", "tenant-e", sim_grid(1, 4))).unwrap_err();
    assert_eq!(shed.reason, RejectReason::QueueFull { capacity: 4 });

    // Cancel bolt from inside the grid, after two of its points completed.
    static BOLT_TOKEN: OnceLock<CancelToken> = OnceLock::new();
    static BOLT_DONE: AtomicUsize = AtomicUsize::new(0);
    static CROW_PANICS: AtomicUsize = AtomicUsize::new(0);
    BOLT_TOKEN.set(bolt_handle.token.clone()).unwrap();
    let run = queue
        .run(|jp| {
            if jp.params.get("kind").and_then(Json::as_str) == Some("panic") {
                CROW_PANICS.fetch_add(1, Ordering::SeqCst);
            }
            let out = eval(jp);
            if jp.job_id == "bolt" && BOLT_DONE.fetch_add(1, Ordering::SeqCst) + 1 >= 2 {
                BOLT_TOKEN.get().unwrap().cancel();
            }
            out
        })
        .unwrap();

    let by_id = |id: &str| run.outcomes.iter().find(|o| o.job_id == id).unwrap();
    assert_eq!(by_id("atlas").status, JobStatus::Completed);
    assert_eq!(by_id("bolt").status, JobStatus::Cancelled);
    assert!(by_id("bolt").evaluated_points < 6, "cancellation dropped at least one point");
    assert_eq!(by_id("crow").status, JobStatus::Degraded, "poisoned point degrades, queue survives");
    assert_eq!(CROW_PANICS.load(Ordering::SeqCst), 3, "1 attempt + 2 bounded retries");
    let crow_poisoned = &by_id("crow").points[2];
    assert_eq!(crow_poisoned.panic_msg.as_deref(), Some("injected point failure"));
    assert_eq!(by_id("dune").status, JobStatus::Degraded, "over-budget job truncated, not killed");
    for rec in &by_id("dune").points {
        assert_eq!(rec.truncation.as_deref(), Some("event_budget"));
    }
    let originals: Vec<String> = run.outcomes.iter().map(|o| o.report().to_canonical_string()).collect();

    // SIGKILL drill: keep the journal only up to bolt's terminal line (all
    // of bolt's fate is durable; other jobs are mid-grid) and resume.
    let text = std::fs::read_to_string(&journal).unwrap();
    let cut = text
        .lines()
        .position(|l| {
            l.contains("\"kind\":\"transition\"")
                && l.contains("\"job_id\":\"bolt\"")
                && l.contains("\"status\":\"cancelled\"")
        })
        .expect("bolt's terminal transition is journaled");
    let prefix: Vec<&str> = text.lines().take(cut + 1).collect();
    for threads in [1usize, 2, 8] {
        let copy = temp(&format!("acceptance-t{threads}"));
        std::fs::write(&copy, format!("{}\n", prefix.join("\n"))).unwrap();
        let mut queue = JobQueue::new(cfg(&copy, true, threads)).unwrap();
        for s in [atlas.clone(), bolt.clone(), crow.clone(), dune.clone()] {
            queue.submit(s).unwrap();
        }
        let resumed = queue.run(eval).unwrap();
        for (original, outcome) in originals.iter().zip(&resumed.outcomes) {
            assert_eq!(
                &outcome.report().to_canonical_string(),
                original,
                "{} must resume byte-identically at {threads} workers",
                outcome.job_id
            );
        }
        let bolt_resumed = resumed.outcomes.iter().find(|o| o.job_id == "bolt").unwrap();
        assert_eq!(bolt_resumed.evaluated_points, 0, "bolt's fate is fully journaled");
        assert_eq!(bolt_resumed.resumed_points, 6);
        std::fs::remove_file(&copy).unwrap();
    }
    std::fs::remove_file(&journal).unwrap();
}

/// Cancelling one tenant's job never perturbs another tenant's results:
/// the survivors' reports are byte-identical to solo runs at 1/2/8 workers.
#[test]
fn cancellation_leaves_other_tenants_byte_identical_to_solo_runs() {
    let solo = |spec: JobSpec, threads: usize| -> String {
        let mut q =
            JobQueue::new(QueueConfig { pool: PoolConfig::explicit(threads), ..QueueConfig::default() })
                .unwrap();
        q.submit(spec).unwrap();
        q.run(eval).unwrap().outcomes.remove(0).report().to_canonical_string()
    };
    let ember = spec("ember", "tenant-a", sim_grid(5, 8));
    let mut noise = spec("noise", "tenant-b", sim_grid(8, 8));
    noise.base_seed = 77;
    let mut frost = spec("frost", "tenant-c", sim_grid(5, 12));
    frost.base_seed = 78;
    let ember_solo = solo(ember.clone(), 1);
    let frost_solo = solo(frost.clone(), 1);

    for threads in [1usize, 2, 8] {
        let mut queue =
            JobQueue::new(QueueConfig { pool: PoolConfig::explicit(threads), ..QueueConfig::default() })
                .unwrap();
        queue.submit(ember.clone()).unwrap();
        let handle = queue.submit(noise.clone()).unwrap();
        queue.submit(frost.clone()).unwrap();
        static DONE: AtomicUsize = AtomicUsize::new(0);
        DONE.store(0, Ordering::SeqCst);
        let token = handle.token;
        let run = queue
            .run(|jp| {
                let out = eval(jp);
                if jp.job_id == "noise" && DONE.fetch_add(1, Ordering::SeqCst) + 1 >= 2 {
                    token.cancel();
                }
                out
            })
            .unwrap();
        assert_eq!(run.outcomes[1].status, JobStatus::Cancelled);
        assert_eq!(
            run.outcomes[0].report().to_canonical_string(),
            ember_solo,
            "ember isolated from noise's cancellation at {threads} workers"
        );
        assert_eq!(
            run.outcomes[2].report().to_canonical_string(),
            frost_solo,
            "frost isolated from noise's cancellation at {threads} workers"
        );
    }
}

/// A duplicate submission is served entirely from the content-addressed
/// result cache: zero points evaluated, identical rows.
#[test]
fn duplicate_submission_is_served_from_the_cache() {
    static EVALS: [AtomicUsize; 3] = [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)];
    let mut queue =
        JobQueue::new(QueueConfig { pool: PoolConfig::explicit(2), ..QueueConfig::default() }).unwrap();
    let first = spec("first", "tenant-a", sim_grid(3, 8));
    let mut second = first.clone();
    second.job_id = "second".into();
    second.tenant = "tenant-b".into();
    queue.submit(first).unwrap();
    queue.submit(second).unwrap();
    let run = queue
        .run(|jp| {
            EVALS[jp.ctx.point].fetch_add(1, Ordering::SeqCst);
            eval(jp)
        })
        .unwrap();
    let (first, second) = (&run.outcomes[0], &run.outcomes[1]);
    assert_eq!(first.evaluated_points, 3);
    assert_eq!(second.evaluated_points, 0, "the duplicate re-evaluates nothing");
    assert_eq!(second.cached_points, 3);
    for (i, counter) in EVALS.iter().enumerate() {
        assert_eq!(counter.load(Ordering::SeqCst), 1, "point {i} evaluated exactly once");
    }
    assert_eq!(
        first.report().get("rows"),
        second.report().get("rows"),
        "cached rows are the evaluator's rows"
    );
    assert_eq!(first.status, second.status);
}

/// If the designated evaluator's job is cancelled before it runs the shared
/// point, a parked duplicate is promoted and still gets a real result.
#[test]
fn cancelled_owner_promotes_the_parked_duplicate() {
    let mut queue =
        JobQueue::new(QueueConfig { pool: PoolConfig::explicit(1), ..QueueConfig::default() }).unwrap();
    let owner = spec("owner", "tenant-a", sim_grid(3, 8));
    let mut dup = owner.clone();
    dup.job_id = "dup".into();
    dup.tenant = "tenant-b".into();
    let handle = queue.submit(owner).unwrap();
    queue.submit(dup).unwrap();
    handle.cancel();
    let run = queue.run(eval).unwrap();
    assert_eq!(run.outcomes[0].status, JobStatus::Cancelled);
    assert_eq!(run.outcomes[0].evaluated_points, 0);
    assert_eq!(run.outcomes[1].status, JobStatus::Completed, "the duplicate is promoted, not starved");
    assert_eq!(run.outcomes[1].evaluated_points, 3);
    assert!(run.outcomes[1].points.iter().all(|r| r.row.is_some()));
}

/// Admission control rejects malformed and over-capacity submissions with
/// typed reasons.
#[test]
fn admission_rejections_are_typed() {
    let mut queue =
        JobQueue::new(QueueConfig { max_jobs: 1, max_points_per_job: 4, ..QueueConfig::default() }).unwrap();
    let err = queue.submit(spec("e", "t", Vec::new())).unwrap_err();
    assert_eq!(err.reason, RejectReason::EmptyGrid);
    let err = queue.submit(spec("g", "t", sim_grid(5, 4))).unwrap_err();
    assert_eq!(err.reason, RejectReason::GridTooLarge { points: 5, max_points: 4 });
    queue.submit(spec("a", "t", sim_grid(2, 4))).unwrap();
    let err = queue.submit(spec("a", "t", sim_grid(2, 4))).unwrap_err();
    assert_eq!(err.reason, RejectReason::DuplicateJobId);
    let err = queue.submit(spec("b", "t", sim_grid(2, 4))).unwrap_err();
    assert_eq!(err.reason, RejectReason::QueueFull { capacity: 1 });
    let as_error: malsim::Error = err.into();
    assert!(as_error.to_string().contains("queue is full"), "{as_error}");
}

/// With one worker the dispatch order is the pure WFQ sequence: a High
/// tenant (weight 16) gets its whole grid through while a Low tenant
/// (weight 1) gets a single point.
#[test]
fn weighted_fair_queueing_interleaves_by_priority() {
    let mut queue =
        JobQueue::new(QueueConfig { pool: PoolConfig::explicit(1), ..QueueConfig::default() }).unwrap();
    let mut fast = spec("fast", "alpha", sim_grid(8, 4));
    fast.priority = Priority::High;
    let mut slow = spec("slow", "zeta", sim_grid(8, 4));
    slow.base_seed = 90;
    slow.priority = Priority::Low;
    queue.submit(fast).unwrap();
    queue.submit(slow).unwrap();
    let order: Mutex<Vec<String>> = Mutex::new(Vec::new());
    queue
        .run(|jp| {
            order.lock().unwrap().push(jp.job_id.to_owned());
            eval(jp)
        })
        .unwrap();
    let order = order.into_inner().unwrap();
    assert_eq!(order.len(), 16);
    let fast_in_first_9 = order.iter().take(9).filter(|id| *id == "fast").count();
    assert_eq!(fast_in_first_9, 8, "all high-priority points dispatch within 9 slots: {order:?}");
}

/// Damaged journal lines (torn tail, tampered transition) are counted and
/// skipped on resume; the affected points simply re-run to the same bytes.
#[test]
fn journal_damage_is_counted_and_survived() {
    let journal = temp("damage");
    let cfg = QueueConfig {
        pool: PoolConfig::explicit(1),
        journal: Some(journal.clone()),
        ..QueueConfig::default()
    };
    let mut queue = JobQueue::new(cfg.clone()).unwrap();
    queue.submit(spec("quill", "tenant-a", sim_grid(3, 8))).unwrap();
    let original = queue.run(eval).unwrap().outcomes.remove(0);

    let mut text = std::fs::read_to_string(&journal).unwrap();
    // Drop the terminal line so the job resumes as in-flight, tamper one
    // record's hash, and tear the tail mid-line.
    let keep: Vec<&str> = text.lines().take(3).collect();
    text = format!("{}\n", keep.join("\n"));
    text = text.replacen("\"acc\":", "\"acc_\":", 1);
    text.push_str("{\"experiment\":\"quill\",\"base_se");
    std::fs::write(&journal, &text).unwrap();

    let mut queue = JobQueue::new(QueueConfig { resume: true, ..cfg }).unwrap();
    queue.submit(spec("quill", "tenant-a", sim_grid(3, 8))).unwrap();
    let resumed = queue.run(eval).unwrap();
    assert_eq!(resumed.skipped_lines, 2, "the tampered record and the torn tail");
    assert_eq!(
        resumed.outcomes[0].report().to_canonical_string(),
        original.report().to_canonical_string(),
        "damage costs re-runs, never bytes"
    );
    std::fs::remove_file(&journal).unwrap();
}

/// Resubmitting a changed job under a journaled id is rejected — resuming
/// would splice unrelated results into its report.
#[test]
fn changed_resubmission_is_rejected_on_resume() {
    let journal = temp("mismatch");
    let cfg = QueueConfig { journal: Some(journal.clone()), ..QueueConfig::default() };
    let mut queue = JobQueue::new(cfg.clone()).unwrap();
    queue.submit(spec("drift", "tenant-a", sim_grid(3, 8))).unwrap();
    queue.run(eval).unwrap();

    let mut queue = JobQueue::new(QueueConfig { resume: true, ..cfg }).unwrap();
    let mut changed = spec("drift", "tenant-a", sim_grid(4, 8));
    changed.base_seed = 99;
    let err = queue.submit(changed).unwrap_err();
    assert!(
        matches!(err.reason, RejectReason::JournalMismatch { .. }),
        "changed grid+seed must not splice: {err}"
    );
    // The unchanged spec is still admitted and resumes cleanly.
    let mut queue =
        JobQueue::new(QueueConfig { resume: true, journal: Some(journal.clone()), ..QueueConfig::default() })
            .unwrap();
    queue.submit(spec("drift", "tenant-a", sim_grid(3, 8))).unwrap();
    let run = queue.run(eval).unwrap();
    assert_eq!(run.outcomes[0].resumed_points, 3);
    assert_eq!(run.outcomes[0].evaluated_points, 0);
    std::fs::remove_file(&journal).unwrap();
}

/// Disk-full mid-journal: once the chaos disk runs out of space the journal
/// quarantines with a typed `StorageFull` fault, but every job still runs to
/// completion and reports the same bytes as a journal-free run.
#[test]
fn disk_full_mid_journal_degrades_storage_but_completes() {
    use malsim::chaosfs::{ChaosFs, FaultSchedule};
    use std::sync::Arc;

    let clean = {
        let mut queue =
            JobQueue::new(QueueConfig { pool: PoolConfig::explicit(2), ..QueueConfig::default() }).unwrap();
        queue.submit(spec("atlas", "tenant-a", sim_grid(4, 8))).unwrap();
        queue.submit(spec("bolt", "tenant-b", sim_grid(3, 8))).unwrap();
        queue.run(eval).unwrap()
    };
    assert!(clean.storage_degraded.is_none());

    // Room for roughly two records, then hard ENOSPC on every append.
    let chaos = ChaosFs::new(FaultSchedule { disk_capacity: Some(500), ..FaultSchedule::quiet(3) });
    let journal = temp("enospc");
    let cfg = QueueConfig {
        pool: PoolConfig::explicit(2),
        journal: Some(journal.clone()),
        storage: Some(Arc::new(chaos.clone())),
        ..QueueConfig::default()
    };
    let mut queue = JobQueue::new(cfg).unwrap();
    queue.submit(spec("atlas", "tenant-a", sim_grid(4, 8))).unwrap();
    queue.submit(spec("bolt", "tenant-b", sim_grid(3, 8))).unwrap();
    let run = queue.run(eval).unwrap();

    let fault = run.storage_degraded.as_ref().expect("ENOSPC must surface as a typed fault");
    assert_eq!(fault.kind, std::io::ErrorKind::StorageFull);
    for (clean, chaos) in clean.outcomes.iter().zip(&run.outcomes) {
        assert_eq!(chaos.points.len(), clean.points.len(), "{}: the grid still completes", chaos.job_id);
        assert_eq!(chaos.storage_degraded.as_ref().map(|f| f.kind), Some(std::io::ErrorKind::StorageFull));
        assert_eq!(
            chaos.report().to_canonical_string(),
            clean.report().to_canonical_string(),
            "{}: storage faults never perturb report bytes",
            chaos.job_id
        );
    }
    assert!(chaos.stats().injected.contains_key("disk_full"), "{:?}", chaos.stats().injected);
    let _ = std::fs::remove_file(&journal);
}

/// Fsync failure mid-journal: the first failed fsync quarantines the writer
/// (fsyncgate semantics — a failed fsync is never retried), the run keeps
/// going without persistence, and a repaired journal resumes what was durable.
#[test]
fn fsync_failure_mid_journal_quarantines_then_repair_salvages_the_durable_prefix() {
    use malsim::chaosfs::{ChaosFs, FaultSchedule};
    use std::sync::Arc;

    // Fail every third fsync: some records land durably before quarantine.
    let chaos = ChaosFs::new(FaultSchedule { fsync_fail_permille: 333, ..FaultSchedule::quiet(11) });
    let journal = temp("fsync-fail");
    let cfg = QueueConfig {
        pool: PoolConfig::explicit(1),
        journal: Some(journal.clone()),
        storage: Some(Arc::new(chaos.clone())),
        ..QueueConfig::default()
    };
    let mut queue = JobQueue::new(cfg).unwrap();
    queue.submit(spec("quill", "tenant-a", sim_grid(5, 8))).unwrap();
    let run = queue.run(eval).unwrap();
    let original = run.outcomes[0].report().to_canonical_string();
    let fault = run.storage_degraded.as_ref().expect("a failed fsync must quarantine");
    assert_eq!(run.outcomes[0].status, JobStatus::Completed, "status stays a pure function of records");
    assert!(fault.to_string().contains("fsync"), "{fault}");
    assert!(chaos.stats().injected.contains_key("fsync_fail"), "{:?}", chaos.stats().injected);

    // The on-disk journal holds whatever prefix survived; repair compacts it
    // to self-hash-valid lines and the resume re-runs only what was lost.
    let summary = malsim::checkpoint::repair_journal(&journal).unwrap();
    assert_eq!(summary.dropped, summary.lines_seen - summary.kept);
    let mut queue = JobQueue::new(QueueConfig {
        pool: PoolConfig::explicit(1),
        journal: Some(journal.clone()),
        resume: true,
        ..QueueConfig::default()
    })
    .unwrap();
    queue.submit(spec("quill", "tenant-a", sim_grid(5, 8))).unwrap();
    let resumed = queue.run(eval).unwrap();
    assert_eq!(resumed.skipped_lines, 0, "repair leaves only valid lines");
    assert!(resumed.storage_degraded.is_none());
    assert_eq!(
        resumed.outcomes[0].report().to_canonical_string(),
        original,
        "resume over the repaired journal is byte-identical"
    );
    std::fs::remove_file(&journal).unwrap();
}

/// A hostile scenario script run as a job degrades its own points to typed
/// script faults while the benign tenant's job completes untouched.
#[test]
fn hostile_script_job_is_contained() {
    let hostile = vec![
        Json::obj([("kind", "script".into()), ("src", "#! name: census\nreturn host_count()".into())]),
        Json::obj([
            ("kind", "script".into()),
            ("src", "#! name: bomb\n#! fuel: 4000\nwhile true do end".into()),
        ]),
        Json::obj([("kind", "script".into()), ("src", "#! name: detonator\ndetonate(\"ws-0000\")".into())]),
    ];
    let mut queue =
        JobQueue::new(QueueConfig { pool: PoolConfig::explicit(2), ..QueueConfig::default() }).unwrap();
    queue.submit(spec("benign", "tenant-a", sim_grid(3, 8))).unwrap();
    let mut script_job = spec("hostile", "tenant-b", hostile);
    script_job.base_seed = 50;
    queue.submit(script_job).unwrap();
    let run = queue.run(eval).unwrap();
    assert_eq!(run.outcomes[0].status, JobStatus::Completed);
    let hostile = &run.outcomes[1];
    assert_eq!(hostile.status, JobStatus::Degraded);
    assert!(hostile.points[0].row.is_some(), "the benign census point completes");
    assert_eq!(hostile.points[1].script_id.as_deref(), Some("bomb"));
    assert!(hostile.points[1].script_error.as_deref().unwrap().contains("fuel"));
    assert_eq!(hostile.points[2].script_id.as_deref(), Some("detonator"));
    assert!(hostile.points[2].script_error.as_deref().unwrap().contains("capability denied"));
}
