//! Script-sandbox integration tests: hostile scenario scripts degrade their
//! grid points to typed `ScriptFault`s while the rest of the sweep
//! completes, faulted checkpoints resume byte-identically, and a seeded
//! fuzz sweep throws hostile scripts at the full world-facing sandbox with
//! the invariant checker armed — zero panics, every outcome typed.

use std::path::PathBuf;

use malsim::checkpoint::{run_checkpointed_fallible, CheckpointConfig, PointStatus};
use malsim::scenario::ScenarioBuilder;
use malsim::script_api;
use malsim::sweep::SweepSupervisor;
use malsim::sweep::{self, PointOutcome, PointRun};
use malsim_script::fuzz::hostile_script;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("malsim-sbx-{tag}-{}.ckpt", std::process::id()))
}

/// The hostile suite: one representative per attack family, interleaved
/// with benign points so containment (not just detection) is visible.
const HOSTILE_SUITE: &[(&str, &str)] = &[
    ("benign-census", "#! name: benign-census\nreturn host_count()"),
    ("infinite-loop", "#! name: infinite-loop\n#! fuel: 5000\nwhile true do end"),
    ("benign-scan", "#! name: benign-scan\n#! grant: fs_scan\nreturn len(scan_files(\".ini\"))"),
    ("memory-bomb", "#! name: memory-bomb\n#! memory: 8192\nlet s = \"xx\"\nwhile true do s = s .. s end"),
    ("deep-nesting", "#! name: deep-nesting\nreturn ((((((((1))))))))"),
    ("forbidden-cap", "#! name: forbidden-cap\ndetonate(\"ws-0000\")"),
    ("host-error", "#! name: forced-host-error\n#! grant: fs_scan\nscan_files(42)"),
    ("compile-fault", "#! name: compile-fault\nlet = = ="),
];

fn run_suite_point(
    seed: u64,
    source: &str,
) -> Result<PointRun<malsim::report::Json>, sweep::ScriptFaultInfo> {
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(3);
    script_api::run_source(source, &mut world, &mut sim).map(|r| PointRun::complete(r.row()))
}

#[test]
fn hostile_suite_faults_are_typed_and_the_grid_completes() {
    let supervisor = SweepSupervisor::default();
    let outcomes = sweep::run_supervised_fallible(
        "sandbox",
        5,
        HOSTILE_SUITE,
        sweep::PoolConfig::explicit(2),
        &supervisor,
        |ctx, (_, src)| run_suite_point(ctx.derived_seed(), src),
    );
    assert_eq!(outcomes.len(), HOSTILE_SUITE.len(), "every point reaches a terminal outcome");

    let mut faulted = Vec::new();
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            PointOutcome::Completed { .. } => {}
            PointOutcome::ScriptFault { script_id, error, .. } => {
                assert!(error.starts_with("script: "), "typed, display-routed: {error}");
                faulted.push((script_id.as_str(), error.clone()));
            }
            PointOutcome::Poisoned { panic_msg, .. } => {
                panic!("point {i} escaped the sandbox as a panic: {panic_msg}")
            }
        }
    }
    let ids: Vec<&str> = faulted.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        ids,
        ["infinite-loop", "memory-bomb", "forbidden-cap", "forced-host-error", "compile-fault"],
        "exactly the hostile points faulted, in grid order"
    );
    let error_of = |id: &str| &faulted.iter().find(|(i, _)| *i == id).unwrap().1;
    assert!(error_of("infinite-loop").contains("fuel"));
    assert!(error_of("memory-bomb").contains("memory budget"));
    assert!(error_of("forbidden-cap").contains("capability denied"));
    assert!(error_of("compile-fault").contains("compile error"));
}

#[test]
fn checkpointed_hostile_sweep_resumes_byte_identically() {
    let full_path = temp("hostile-full");
    let cfg = CheckpointConfig {
        experiment: "sandbox-ckpt",
        base_seed: 5,
        pool: sweep::PoolConfig::explicit(2),
        supervisor: SweepSupervisor::default(),
        path: &full_path,
        resume: false,
        backend: None,
    };
    let full = run_checkpointed_fallible(&cfg, HOSTILE_SUITE, |ctx, (_, src)| {
        run_suite_point(ctx.derived_seed(), src)
    })
    .unwrap();
    let full_report = full.report().to_canonical_string();
    let faults = full.points.iter().filter(|p| p.record.status == PointStatus::ScriptFault).count();
    assert_eq!(faults, 5, "the five hostile points fault");

    // Kill after each possible prefix; every resume must converge to the
    // same bytes, whether or not the kept prefix contains fault records.
    let full_text = std::fs::read_to_string(&full_path).unwrap();
    for keep in [1, 3, 5, 7] {
        let partial = temp(&format!("hostile-k{keep}"));
        let lines: Vec<&str> = full_text.lines().take(keep).collect();
        std::fs::write(&partial, format!("{}\n", lines.join("\n"))).unwrap();
        let resumed = run_checkpointed_fallible(
            &CheckpointConfig { path: &partial, resume: true, ..cfg },
            HOSTILE_SUITE,
            |ctx, (_, src)| run_suite_point(ctx.derived_seed(), src),
        )
        .unwrap();
        assert_eq!(
            resumed.report().to_canonical_string(),
            full_report,
            "byte-identical resume after keeping {keep} lines"
        );
        std::fs::remove_file(&partial).unwrap();
    }
    std::fs::remove_file(&full_path).unwrap();
}

/// The scenario-space fuzzer: seeded hostile scripts against the real
/// world-facing sandbox (gated host, full grants, tight budgets), invariant
/// checker armed. Every outcome must be a value or a typed fault — a panic
/// or abort here is a sandbox escape. 2000 seeds in release CI; kept to 400
/// under `cfg(debug_assertions)` so local `cargo test` stays quick.
#[test]
fn fuzzed_hostile_scripts_never_escape_the_sandbox() {
    let seeds: u64 = if cfg!(debug_assertions) { 400 } else { 2000 };
    let mut faults = 0u64;
    let mut completions = 0u64;
    for seed in 0..seeds {
        // Full grants + tight budgets: the fuzzer probes resource and parser
        // attacks, not the capability gate (the suite above covers that).
        let source = format!(
            "#! name: fuzz-{seed}\n#! grant: net_dial fs_scan usb_write exfil detonate audio bluetooth recon\n#! fuel: 20000\n#! memory: 131072\n{}",
            hostile_script(seed)
        );
        let (mut world, mut sim) = ScenarioBuilder::new(seed).check_invariants().office_lan(2);
        match script_api::run_source(&source, &mut world, &mut sim) {
            Ok(_) => completions += 1,
            Err(fault) => {
                assert_eq!(fault.script_id, format!("fuzz-{seed}"));
                assert!(fault.error.starts_with("script: "), "typed fault: {}", fault.error);
                faults += 1;
            }
        }
    }
    assert_eq!(faults + completions, seeds);
    assert!(faults > 0, "the generator produces scripts that trip the limits");
    assert!(completions > 0, "the generator also produces scripts that complete");
}
