//! Offline stand-in for `serde`.
//!
//! The container has no network access and no crates.io mirror, so the
//! workspace vendors the minimal surface it actually uses: the `Serialize`
//! and `Deserialize` trait names (as markers with blanket impls) and the
//! same-named derive macros (which expand to nothing). Nothing in the tree
//! drives serde's data model, so this is behavior-preserving.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}
