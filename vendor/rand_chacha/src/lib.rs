//! Offline stand-in for `rand_chacha`, carrying a genuine ChaCha8
//! keystream generator (djb variant: 64-bit block counter, 8 rounds).
//!
//! The stream is deterministic, platform-independent, and frozen by this
//! vendored source — the property `malsim-kernel` documents ("stable across
//! releases") now holds by construction. It is NOT bit-compatible with the
//! upstream `rand_chacha` stream; nothing in the workspace depends on that.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means the buffer is spent.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865, // "expa"
            0x3320_646e, // "nd 3"
            0x7962_2d32, // "2-by"
            0x6b20_6574, // "te k"
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; BLOCK_WORDS], idx: BLOCK_WORDS }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn keystream_is_not_degenerate() {
        // Distinct blocks, no stuck words.
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let words: Vec<u32> = (0..64).map(|_| r.next_u32()).collect();
        let mut uniq = words.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 60, "keystream words should be essentially unique");
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[0..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..12], &w2);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
