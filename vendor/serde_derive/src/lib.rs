//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker — nothing in the tree serializes through serde's data model — so
//! the derives expand to nothing. The marker traits themselves carry
//! blanket impls in the sibling `serde` stub.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` stub's blanket impl covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` stub's blanket impl covers every type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
