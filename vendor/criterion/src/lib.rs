//! Offline stand-in for `criterion`.
//!
//! Provides the macro and type surface the bench crate uses
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`) with a simple wall-clock timer instead of criterion's
//! statistical machinery: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and prints the median per-iteration time.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its median iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up: find an iteration count that fills ~10ms per sample.
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        bencher.iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!("{id:<40} median {:>12}/iter", format_ns(median));
        self
    }

    /// Opens a named group of benchmarks (criterion API shim). The group
    /// carries its own sample size and prefixes each id with the group name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }
}

/// A named collection of benchmarks sharing settings (shim for
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark under the group's name and sample size.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let outer = self.criterion.sample_size;
        self.criterion.sample_size = self.sample_size;
        self.criterion.bench_function(&full, f);
        self.criterion.sample_size = outer;
        self
    }

    /// Ends the group (no-op in the shim; criterion finalizes reports here).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch size chosen during warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
