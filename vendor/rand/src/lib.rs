//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the trait surface `malsim-kernel` consumes —
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait, and the
//! uniform-sampling machinery under [`distributions`] — with unbiased
//! rejection sampling for integer ranges. The value streams are NOT
//! bit-compatible with upstream `rand`; the workspace only requires that
//! streams be deterministic and stable, which they are (the generator
//! itself lives in the sibling `rand_chacha` stub).

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 so
    /// nearby seeds yield unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling helpers, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions and uniform-range sampling.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over its domain for
    /// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty => $m:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$m() as $t
                }
            }
        )*};
    }
    standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                  usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                  i64 => next_u64, isize => next_u64);

    /// Uniform-range sampling.
    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Unbiased sample in `[0, span)` by rejection.
        fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            // 2^64 mod span; accept draws below 2^64 - rem so every residue
            // is equally likely.
            let rem = (u64::MAX % span).wrapping_add(1) % span;
            loop {
                let v = rng.next_u64();
                if rem == 0 || v < u64::MAX - rem + 1 {
                    return v % span;
                }
            }
        }

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Sample uniformly from `[low, high)` (`high` included when
            /// `inclusive`). The range must be non-empty.
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! sample_uniform_int {
            ($($t:ty as $u:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = (high as $u).wrapping_sub(low as $u) as u64;
                        let span = if inclusive { span.wrapping_add(1) } else { span };
                        if span == 0 {
                            // Inclusive over the full domain: every draw valid.
                            return (rng.next_u64() as $u) as $t;
                        }
                        low.wrapping_add(uniform_u64(rng, span) as $t)
                    }
                }
            )*};
        }
        sample_uniform_int!(u8 as u8, u16 as u16, u32 as u32, u64 as u64, usize as usize,
                            i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

        macro_rules! sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        _inclusive: bool,
                    ) -> Self {
                        let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                        let v = low + u * (high - low);
                        // Floating rounding can land exactly on `high`; keep
                        // the half-open contract.
                        if v >= high { low } else { v }
                    }
                }
            )*};
        }
        sample_uniform_float!(f32, f64);

        /// Range forms accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
            /// Whether the range contains no values.
            fn is_empty(&self) -> bool;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
            fn is_empty(&self) -> bool {
                !(self.start < self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, *self.start(), *self.end(), true)
            }
            fn is_empty(&self) -> bool {
                !(self.start() <= self.end())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Counter(1);
        let _ = r.gen_range(5..5u32);
    }

    #[test]
    fn rejection_covers_all_residues() {
        let mut r = Counter(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[u64::sample_between(&mut r, 0, 7, false) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
