//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators this workspace's property tests use —
//! ranges, regex-literal strings, tuples, collections, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `prop_compose!`, and the `proptest!`
//! harness macro — over a deterministic per-test RNG seeded from the test
//! name. There is no shrinking and no persistence: a failing case panics with
//! the generated inputs left to the assertion message. Case count is fixed at
//! [`NUM_CASES`] per property.

use std::rc::Rc;

/// Number of generated cases per property.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    /// Deterministic RNG for strategy generation (SplitMix64 stream seeded
    /// from an FNV-1a hash of the test name, so every run and every platform
    /// explores the same cases).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let rem = (u64::MAX % n).wrapping_add(1) % n;
            loop {
                let v = self.next_u64();
                if rem == 0 || v < u64::MAX - rem + 1 {
                    return v % n;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a cloneable recipe that draws a value from a [`TestRng`].
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy { gen: Rc::new(move |rng| inner.gen_value(rng)) }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper. The
    /// tree is unrolled `depth` times; at each level the base case is drawn
    /// half the time so generated values cover all depths up to `depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.clone().boxed();
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let shallow = base.clone();
            strat = BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64() & 1 == 0 {
                        shallow.gen_value(rng)
                    } else {
                        deeper.gen_value(rng)
                    }
                }),
            };
        }
        strat
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Rc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Builds a strategy from a generation closure.
pub fn from_fn<T, F>(f: F) -> FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T + Clone,
{
    FnStrategy(f)
}

/// See [`from_fn`].
#[derive(Clone)]
pub struct FnStrategy<F>(F);

impl<T, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
strategy_for_float_range!(f32, f64);

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

mod regex_gen {
    use super::test_runner::TestRng;

    /// One regex element plus its repetition bounds.
    #[derive(Clone, Debug)]
    pub struct Piece {
        node: Node,
        min: usize,
        max: usize,
    }

    #[derive(Clone, Debug)]
    enum Node {
        Lit(char),
        /// Inclusive character ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        Group(Vec<Piece>),
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let c = chars.next().expect("unterminated character class");
            let c = match c {
                ']' => break,
                '\\' => unescape(chars.next().expect("dangling escape in class")),
                other => other,
            };
            if chars.peek() == Some(&'-') {
                let mut look = chars.clone();
                look.next();
                if look.peek() != Some(&']') {
                    chars.next();
                    let hi = match chars.next().expect("unterminated range") {
                        '\\' => unescape(chars.next().expect("dangling escape in class")),
                        other => other,
                    };
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        assert!(!ranges.is_empty(), "empty character class");
        ranges
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((lo, "")) => {
                        let lo = lo.parse().expect("bad quantifier");
                        (lo, lo + 8)
                    }
                    Some((lo, hi)) => (
                        lo.parse().expect("bad quantifier"),
                        hi.parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }

    fn parse_seq(chars: &mut std::iter::Peekable<std::str::Chars>, in_group: bool) -> Vec<Piece> {
        let mut pieces = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' && in_group {
                chars.next();
                break;
            }
            chars.next();
            let node = match c {
                '[' => Node::Class(parse_class(chars)),
                '(' => Node::Group(parse_seq(chars, true)),
                '\\' => Node::Lit(unescape(chars.next().expect("dangling escape"))),
                '.' => Node::Class(vec![(' ', '~')]),
                other => Node::Lit(other),
            };
            let (min, max) = parse_quantifier(chars);
            pieces.push(Piece { node, min, max });
        }
        pieces
    }

    /// Parses the regex subset used by the workspace's tests: literals,
    /// escapes, character classes with ranges, groups, and the quantifiers
    /// `?`, `*`, `+`, `{n}`, `{m,n}`, `{m,}`.
    pub fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        parse_seq(&mut chars, false)
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let size = *hi as u64 - *lo as u64 + 1;
                    if pick < size {
                        out.push(char::from_u32(*lo as u32 + pick as u32).expect("valid char"));
                        return;
                    }
                    pick -= size;
                }
                unreachable!("class pick out of bounds");
            }
            Node::Group(pieces) => gen_seq(pieces, rng, out),
        }
    }

    /// Generates one string matching the parsed pattern.
    pub fn gen_seq(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
        for piece in pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                gen_node(&piece.node, rng, out);
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let pieces = regex_gen::parse(self);
        let mut out = String::new();
        regex_gen::gen_seq(&pieces, rng, &mut out);
        out
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known-length collection, mirroring
    /// `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Maps the raw draw onto `[0, len)`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by the collection strategies.
    pub trait SizeRange: Clone {
        /// Draws a target length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Vector of values drawn from `elem`, with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    /// Ordered set of values drawn from `elem`. Duplicates are redrawn a
    /// bounded number of times, so the result may fall short of the target
    /// length when the element domain is small.
    pub fn btree_set<S, L>(elem: S, len: L) -> SetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        SetStrategy { elem, len }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct SetStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S, L> Strategy for SetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.len.pick_len(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.elem.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Ordered map with keys from `key` and values from `value`.
    pub fn btree_map<K, V, L>(key: K, value: V, len: L) -> MapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        MapStrategy { key, value, len }
    }

    /// See [`btree_map`].
    #[derive(Clone)]
    pub struct MapStrategy<K, V, L> {
        key: K,
        value: V,
        len: L,
    }

    impl<K, V, L> Strategy for MapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.len.pick_len(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
    /// Alias matching upstream proptest's `prelude::prop` re-export.
    pub use crate as prop;
}

/// Runs each contained `#[test]` function over [`NUM_CASES`](crate::NUM_CASES)
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::NUM_CASES {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among the argument strategies (all must share a value
/// type). Upstream's weighted `w => strategy` arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let __arms = vec![$($crate::Strategy::boxed($arm)),+];
        $crate::from_fn(move |rng: &mut $crate::test_runner::TestRng| {
            let __i = rng.below(__arms.len() as u64) as usize;
            $crate::Strategy::gen_value(&__arms[__i], rng)
        })
    }};
}

/// Defines a function returning a composite strategy, mirroring upstream's
/// two-argument-list form: the first list is ordinary parameters, the second
/// binds `pattern in strategy` draws available to the body.
#[macro_export]
macro_rules! prop_compose {
    ($vis:vis fn $name:ident($($arg:ident: $aty:ty),* $(,)?)($($pat:pat in $strat:expr),* $(,)?) -> $out:ty $body:block) => {
        $vis fn $name($($arg: $aty),*) -> impl $crate::Strategy<Value = $out> {
            $crate::from_fn(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $pat = $crate::Strategy::gen_value(&($strat), __rng);)*
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;
    use super::Strategy;

    #[test]
    fn regex_subset_generates_matching_shapes() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let p = Strategy::gen_value(&"[a-zA-Z0-9_]{1,8}(\\.[a-z]{1,4})?", &mut rng);
            let (stem, ext) = match p.split_once('.') {
                Some((s, e)) => (s, Some(e)),
                None => (p.as_str(), None),
            };
            assert!((1..=8).contains(&stem.len()));
            if let Some(e) = ext {
                assert!((1..=4).contains(&e.len()));
                assert!(e.chars().all(|c| c.is_ascii_lowercase()));
            }

            let exe = Strategy::gen_value(&"[a-z]{3,10}\\.exe", &mut rng);
            assert!(exe.ends_with(".exe"));

            let path = Strategy::gen_value(&"/[a-z]{0,10}", &mut rng);
            assert!(path.starts_with('/'));
        }
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let (a, b) = Strategy::gen_value(&(0usize..50, 0usize..5), &mut rng);
            assert!(a < 50 && b < 5);
            let v = Strategy::gen_value(&(1u8..=255), &mut rng);
            assert!(v >= 1);
            let f = Strategy::gen_value(&(0.0f64..2_000.0), &mut rng);
            assert!((0.0..2_000.0).contains(&f));
        }
    }

    #[test]
    fn collections_honor_length_bounds() {
        let mut rng = TestRng::for_test("collections");
        for _ in 0..100 {
            let v = Strategy::gen_value(&crate::collection::vec(any::<u8>(), 0..6), &mut rng);
            assert!(v.len() < 6);
            let s =
                Strategy::gen_value(&crate::collection::btree_set(0usize..60, 0..30), &mut rng);
            assert!(s.len() < 30);
            let m = Strategy::gen_value(
                &crate::collection::btree_map("[a-z]{1,6}", any::<bool>(), 1..30),
                &mut rng,
            );
            assert!(!m.is_empty() && m.len() < 30);
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::gen_value(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            L(i32),
            Add(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::L(_) => 0,
                E::Add(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (-10i32..10).prop_map(E::L);
        let strat = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_test("recursive");
        let mut max_depth = 0;
        for _ in 0..200 {
            let e = Strategy::gen_value(&strat, &mut rng);
            let d = depth(&e);
            assert!(d <= 4);
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "recursion should actually recurse");
    }

    proptest! {
        #[test]
        fn the_harness_macro_itself_works(x in 0u64..100, label in "[a-z]{1,4}") {
            prop_assert!(x < 100);
            prop_assert_ne!(label.len(), 0);
            prop_assert_eq!(label.len(), label.chars().count());
        }
    }
}
