/root/repo/target/release/examples/campaign_compare-d66c7527a3e719d9.d: crates/core/../../examples/campaign_compare.rs

/root/repo/target/release/examples/campaign_compare-d66c7527a3e719d9: crates/core/../../examples/campaign_compare.rs

crates/core/../../examples/campaign_compare.rs:
