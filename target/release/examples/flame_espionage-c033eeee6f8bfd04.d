/root/repo/target/release/examples/flame_espionage-c033eeee6f8bfd04.d: crates/core/../../examples/flame_espionage.rs

/root/repo/target/release/examples/flame_espionage-c033eeee6f8bfd04: crates/core/../../examples/flame_espionage.rs

crates/core/../../examples/flame_espionage.rs:
