/root/repo/target/release/examples/shamoon_wiper-fef7bcedb5871b9d.d: crates/core/../../examples/shamoon_wiper.rs

/root/repo/target/release/examples/shamoon_wiper-fef7bcedb5871b9d: crates/core/../../examples/shamoon_wiper.rs

crates/core/../../examples/shamoon_wiper.rs:
