/root/repo/target/release/examples/quickstart-48303dd10ef8ce46.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-48303dd10ef8ce46: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
