/root/repo/target/release/examples/takedown_resilience-7a97950308006d41.d: crates/core/../../examples/takedown_resilience.rs

/root/repo/target/release/examples/takedown_resilience-7a97950308006d41: crates/core/../../examples/takedown_resilience.rs

crates/core/../../examples/takedown_resilience.rs:
