/root/repo/target/release/examples/natanz-168ddc5b4cf6af8c.d: crates/core/../../examples/natanz.rs

/root/repo/target/release/examples/natanz-168ddc5b4cf6af8c: crates/core/../../examples/natanz.rs

crates/core/../../examples/natanz.rs:
