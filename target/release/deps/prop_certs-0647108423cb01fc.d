/root/repo/target/release/deps/prop_certs-0647108423cb01fc.d: crates/certs/tests/prop_certs.rs

/root/repo/target/release/deps/prop_certs-0647108423cb01fc: crates/certs/tests/prop_certs.rs

crates/certs/tests/prop_certs.rs:
