/root/repo/target/release/deps/prop_net-d7eb02a943c90263.d: crates/net/tests/prop_net.rs

/root/repo/target/release/deps/prop_net-d7eb02a943c90263: crates/net/tests/prop_net.rs

crates/net/tests/prop_net.rs:
