/root/repo/target/release/deps/malsim_os-a4927481ea6eb6bc.d: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

/root/repo/target/release/deps/malsim_os-a4927481ea6eb6bc: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

crates/os/src/lib.rs:
crates/os/src/disk.rs:
crates/os/src/error.rs:
crates/os/src/fs.rs:
crates/os/src/host.rs:
crates/os/src/patches.rs:
crates/os/src/path.rs:
crates/os/src/registry.rs:
crates/os/src/services.rs:
crates/os/src/usb.rs:
