/root/repo/target/release/deps/campaign_flame-4a07b8d210d092bf.d: crates/core/../../tests/campaign_flame.rs

/root/repo/target/release/deps/campaign_flame-4a07b8d210d092bf: crates/core/../../tests/campaign_flame.rs

crates/core/../../tests/campaign_flame.rs:
