/root/repo/target/release/deps/malsim_kernel-d32e0eaaf299ee99.d: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/malsim_kernel-d32e0eaaf299ee99: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/metrics.rs:
crates/kernel/src/rng.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/time.rs:
crates/kernel/src/trace.rs:
