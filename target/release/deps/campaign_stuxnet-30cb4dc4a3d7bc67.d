/root/repo/target/release/deps/campaign_stuxnet-30cb4dc4a3d7bc67.d: crates/core/../../tests/campaign_stuxnet.rs

/root/repo/target/release/deps/campaign_stuxnet-30cb4dc4a3d7bc67: crates/core/../../tests/campaign_stuxnet.rs

crates/core/../../tests/campaign_stuxnet.rs:
