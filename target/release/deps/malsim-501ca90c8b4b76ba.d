/root/repo/target/release/deps/malsim-501ca90c8b4b76ba.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libmalsim-501ca90c8b4b76ba.rlib: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libmalsim-501ca90c8b4b76ba.rmeta: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/armory.rs:
crates/core/src/experiments.rs:
crates/core/src/golden.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
