/root/repo/target/release/deps/sweep_parallel-b69c5885003bbc02.d: crates/core/../../tests/sweep_parallel.rs

/root/repo/target/release/deps/sweep_parallel-b69c5885003bbc02: crates/core/../../tests/sweep_parallel.rs

crates/core/../../tests/sweep_parallel.rs:
