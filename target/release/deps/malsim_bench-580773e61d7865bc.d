/root/repo/target/release/deps/malsim_bench-580773e61d7865bc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmalsim_bench-580773e61d7865bc.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmalsim_bench-580773e61d7865bc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
