/root/repo/target/release/deps/malsim_script-3a7f91cec3e09805.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

/root/repo/target/release/deps/libmalsim_script-3a7f91cec3e09805.rlib: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

/root/repo/target/release/deps/libmalsim_script-3a7f91cec3e09805.rmeta: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/compiler.rs:
crates/script/src/error.rs:
crates/script/src/lexer.rs:
crates/script/src/parser.rs:
crates/script/src/value.rs:
crates/script/src/vm.rs:
