/root/repo/target/release/deps/malsim_pe-39d6b4e639ae3e1f.d: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

/root/repo/target/release/deps/malsim_pe-39d6b4e639ae3e1f: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

crates/pe/src/lib.rs:
crates/pe/src/builder.rs:
crates/pe/src/error.rs:
crates/pe/src/image.rs:
crates/pe/src/xor.rs:
