/root/repo/target/release/deps/prop_defense-35b26539333386c8.d: crates/defense/tests/prop_defense.rs

/root/repo/target/release/deps/prop_defense-35b26539333386c8: crates/defense/tests/prop_defense.rs

crates/defense/tests/prop_defense.rs:
