/root/repo/target/release/deps/prop_kernel-a6244bfa477a7309.d: crates/kernel/tests/prop_kernel.rs

/root/repo/target/release/deps/prop_kernel-a6244bfa477a7309: crates/kernel/tests/prop_kernel.rs

crates/kernel/tests/prop_kernel.rs:
