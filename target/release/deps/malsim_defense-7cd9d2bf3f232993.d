/root/repo/target/release/deps/malsim_defense-7cd9d2bf3f232993.d: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

/root/repo/target/release/deps/libmalsim_defense-7cd9d2bf3f232993.rlib: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

/root/repo/target/release/deps/libmalsim_defense-7cd9d2bf3f232993.rmeta: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

crates/defense/src/lib.rs:
crates/defense/src/av.rs:
crates/defense/src/forensics.rs:
crates/defense/src/ids.rs:
crates/defense/src/sinkhole.rs:
