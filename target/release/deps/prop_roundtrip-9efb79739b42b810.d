/root/repo/target/release/deps/prop_roundtrip-9efb79739b42b810.d: crates/pe/tests/prop_roundtrip.rs

/root/repo/target/release/deps/prop_roundtrip-9efb79739b42b810: crates/pe/tests/prop_roundtrip.rs

crates/pe/tests/prop_roundtrip.rs:
