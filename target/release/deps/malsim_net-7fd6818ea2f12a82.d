/root/repo/target/release/deps/malsim_net-7fd6818ea2f12a82.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

/root/repo/target/release/deps/malsim_net-7fd6818ea2f12a82: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/bluetooth.rs:
crates/net/src/dns.rs:
crates/net/src/http.rs:
crates/net/src/lateral.rs:
crates/net/src/retry.rs:
crates/net/src/topology.rs:
crates/net/src/winupdate.rs:
