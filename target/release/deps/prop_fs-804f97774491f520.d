/root/repo/target/release/deps/prop_fs-804f97774491f520.d: crates/os/tests/prop_fs.rs

/root/repo/target/release/deps/prop_fs-804f97774491f520: crates/os/tests/prop_fs.rs

crates/os/tests/prop_fs.rs:
