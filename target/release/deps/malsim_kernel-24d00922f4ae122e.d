/root/repo/target/release/deps/malsim_kernel-24d00922f4ae122e.d: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/libmalsim_kernel-24d00922f4ae122e.rlib: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/libmalsim_kernel-24d00922f4ae122e.rmeta: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/metrics.rs:
crates/kernel/src/rng.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/time.rs:
crates/kernel/src/trace.rs:
