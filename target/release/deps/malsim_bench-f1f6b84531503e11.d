/root/repo/target/release/deps/malsim_bench-f1f6b84531503e11.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/malsim_bench-f1f6b84531503e11: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
