/root/repo/target/release/deps/malsim_script-6a37ad448c8788ef.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

/root/repo/target/release/deps/malsim_script-6a37ad448c8788ef: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/compiler.rs:
crates/script/src/error.rs:
crates/script/src/lexer.rs:
crates/script/src/parser.rs:
crates/script/src/value.rs:
crates/script/src/vm.rs:
