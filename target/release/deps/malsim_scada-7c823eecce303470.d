/root/repo/target/release/deps/malsim_scada-7c823eecce303470.d: crates/scada/src/lib.rs crates/scada/src/cascade.rs crates/scada/src/centrifuge.rs crates/scada/src/drive.rs crates/scada/src/hmi.rs crates/scada/src/plc.rs crates/scada/src/step7.rs

/root/repo/target/release/deps/malsim_scada-7c823eecce303470: crates/scada/src/lib.rs crates/scada/src/cascade.rs crates/scada/src/centrifuge.rs crates/scada/src/drive.rs crates/scada/src/hmi.rs crates/scada/src/plc.rs crates/scada/src/step7.rs

crates/scada/src/lib.rs:
crates/scada/src/cascade.rs:
crates/scada/src/centrifuge.rs:
crates/scada/src/drive.rs:
crates/scada/src/hmi.rs:
crates/scada/src/plc.rs:
crates/scada/src/step7.rs:
