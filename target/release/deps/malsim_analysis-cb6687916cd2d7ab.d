/root/repo/target/release/deps/malsim_analysis-cb6687916cd2d7ab.d: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

/root/repo/target/release/deps/malsim_analysis-cb6687916cd2d7ab: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

crates/analysis/src/lib.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeline.rs:
crates/analysis/src/trends.rs:
