/root/repo/target/release/deps/campaign_shamoon-4d3fc4bdf4a7867b.d: crates/core/../../tests/campaign_shamoon.rs

/root/repo/target/release/deps/campaign_shamoon-4d3fc4bdf4a7867b: crates/core/../../tests/campaign_shamoon.rs

crates/core/../../tests/campaign_shamoon.rs:
