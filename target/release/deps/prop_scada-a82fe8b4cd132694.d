/root/repo/target/release/deps/prop_scada-a82fe8b4cd132694.d: crates/scada/tests/prop_scada.rs

/root/repo/target/release/deps/prop_scada-a82fe8b4cd132694: crates/scada/tests/prop_scada.rs

crates/scada/tests/prop_scada.rs:
