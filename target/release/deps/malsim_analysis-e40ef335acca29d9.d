/root/repo/target/release/deps/malsim_analysis-e40ef335acca29d9.d: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

/root/repo/target/release/deps/libmalsim_analysis-e40ef335acca29d9.rlib: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

/root/repo/target/release/deps/libmalsim_analysis-e40ef335acca29d9.rmeta: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

crates/analysis/src/lib.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeline.rs:
crates/analysis/src/trends.rs:
