/root/repo/target/release/deps/golden_regression-57d246139b00e671.d: crates/core/../../tests/golden_regression.rs

/root/repo/target/release/deps/golden_regression-57d246139b00e671: crates/core/../../tests/golden_regression.rs

crates/core/../../tests/golden_regression.rs:
