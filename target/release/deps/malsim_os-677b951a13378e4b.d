/root/repo/target/release/deps/malsim_os-677b951a13378e4b.d: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

/root/repo/target/release/deps/libmalsim_os-677b951a13378e4b.rlib: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

/root/repo/target/release/deps/libmalsim_os-677b951a13378e4b.rmeta: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

crates/os/src/lib.rs:
crates/os/src/disk.rs:
crates/os/src/error.rs:
crates/os/src/fs.rs:
crates/os/src/host.rs:
crates/os/src/patches.rs:
crates/os/src/path.rs:
crates/os/src/registry.rs:
crates/os/src/services.rs:
crates/os/src/usb.rs:
