/root/repo/target/release/deps/malsim_defense-4eda903b5bdfaf88.d: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

/root/repo/target/release/deps/malsim_defense-4eda903b5bdfaf88: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

crates/defense/src/lib.rs:
crates/defense/src/av.rs:
crates/defense/src/forensics.rs:
crates/defense/src/ids.rs:
crates/defense/src/sinkhole.rs:
