/root/repo/target/release/deps/trends_siblings-4a67c75af646f451.d: crates/analysis/tests/trends_siblings.rs

/root/repo/target/release/deps/trends_siblings-4a67c75af646f451: crates/analysis/tests/trends_siblings.rs

crates/analysis/tests/trends_siblings.rs:
