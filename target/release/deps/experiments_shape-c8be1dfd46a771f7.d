/root/repo/target/release/deps/experiments_shape-c8be1dfd46a771f7.d: crates/core/../../tests/experiments_shape.rs

/root/repo/target/release/deps/experiments_shape-c8be1dfd46a771f7: crates/core/../../tests/experiments_shape.rs

crates/core/../../tests/experiments_shape.rs:
