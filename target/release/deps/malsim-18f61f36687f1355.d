/root/repo/target/release/deps/malsim-18f61f36687f1355.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/malsim-18f61f36687f1355: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/armory.rs:
crates/core/src/experiments.rs:
crates/core/src/golden.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
