/root/repo/target/release/deps/determinism-56d6c89acb18e9ae.d: crates/core/../../tests/determinism.rs

/root/repo/target/release/deps/determinism-56d6c89acb18e9ae: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
