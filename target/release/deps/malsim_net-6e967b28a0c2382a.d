/root/repo/target/release/deps/malsim_net-6e967b28a0c2382a.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

/root/repo/target/release/deps/libmalsim_net-6e967b28a0c2382a.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

/root/repo/target/release/deps/libmalsim_net-6e967b28a0c2382a.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/bluetooth.rs:
crates/net/src/dns.rs:
crates/net/src/http.rs:
crates/net/src/lateral.rs:
crates/net/src/retry.rs:
crates/net/src/topology.rs:
crates/net/src/winupdate.rs:
