/root/repo/target/release/deps/malsim_certs-d0025aa25c08c7cc.d: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

/root/repo/target/release/deps/malsim_certs-d0025aa25c08c7cc: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

crates/certs/src/lib.rs:
crates/certs/src/authority.rs:
crates/certs/src/cert.rs:
crates/certs/src/error.rs:
crates/certs/src/forgery.rs:
crates/certs/src/hash.rs:
crates/certs/src/key.rs:
crates/certs/src/store.rs:
