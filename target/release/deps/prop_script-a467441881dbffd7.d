/root/repo/target/release/deps/prop_script-a467441881dbffd7.d: crates/script/tests/prop_script.rs

/root/repo/target/release/deps/prop_script-a467441881dbffd7: crates/script/tests/prop_script.rs

crates/script/tests/prop_script.rs:
