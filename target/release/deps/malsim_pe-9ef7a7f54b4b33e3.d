/root/repo/target/release/deps/malsim_pe-9ef7a7f54b4b33e3.d: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

/root/repo/target/release/deps/libmalsim_pe-9ef7a7f54b4b33e3.rlib: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

/root/repo/target/release/deps/libmalsim_pe-9ef7a7f54b4b33e3.rmeta: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

crates/pe/src/lib.rs:
crates/pe/src/builder.rs:
crates/pe/src/error.rs:
crates/pe/src/image.rs:
crates/pe/src/xor.rs:
