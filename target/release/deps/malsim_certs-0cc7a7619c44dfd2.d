/root/repo/target/release/deps/malsim_certs-0cc7a7619c44dfd2.d: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

/root/repo/target/release/deps/libmalsim_certs-0cc7a7619c44dfd2.rlib: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

/root/repo/target/release/deps/libmalsim_certs-0cc7a7619c44dfd2.rmeta: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

crates/certs/src/lib.rs:
crates/certs/src/authority.rs:
crates/certs/src/cert.rs:
crates/certs/src/error.rs:
crates/certs/src/forgery.rs:
crates/certs/src/hash.rs:
crates/certs/src/key.rs:
crates/certs/src/store.rs:
