/root/repo/target/debug/examples/shamoon_wiper-5dfcb254355d948e.d: crates/core/../../examples/shamoon_wiper.rs Cargo.toml

/root/repo/target/debug/examples/libshamoon_wiper-5dfcb254355d948e.rmeta: crates/core/../../examples/shamoon_wiper.rs Cargo.toml

crates/core/../../examples/shamoon_wiper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
