/root/repo/target/debug/examples/natanz-b2f322a6b6d60ffd.d: crates/core/../../examples/natanz.rs Cargo.toml

/root/repo/target/debug/examples/libnatanz-b2f322a6b6d60ffd.rmeta: crates/core/../../examples/natanz.rs Cargo.toml

crates/core/../../examples/natanz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
