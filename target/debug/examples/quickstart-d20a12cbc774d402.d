/root/repo/target/debug/examples/quickstart-d20a12cbc774d402.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d20a12cbc774d402: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
