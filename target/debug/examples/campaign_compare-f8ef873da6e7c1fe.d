/root/repo/target/debug/examples/campaign_compare-f8ef873da6e7c1fe.d: crates/core/../../examples/campaign_compare.rs Cargo.toml

/root/repo/target/debug/examples/libcampaign_compare-f8ef873da6e7c1fe.rmeta: crates/core/../../examples/campaign_compare.rs Cargo.toml

crates/core/../../examples/campaign_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
