/root/repo/target/debug/examples/shamoon_wiper-a58ed2dad1a9960b.d: crates/core/../../examples/shamoon_wiper.rs

/root/repo/target/debug/examples/shamoon_wiper-a58ed2dad1a9960b: crates/core/../../examples/shamoon_wiper.rs

crates/core/../../examples/shamoon_wiper.rs:
