/root/repo/target/debug/examples/quickstart-ab1d2faff2b966ed.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ab1d2faff2b966ed.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
