/root/repo/target/debug/examples/campaign_compare-dd9fea30fe297a7f.d: crates/core/../../examples/campaign_compare.rs

/root/repo/target/debug/examples/campaign_compare-dd9fea30fe297a7f: crates/core/../../examples/campaign_compare.rs

crates/core/../../examples/campaign_compare.rs:
