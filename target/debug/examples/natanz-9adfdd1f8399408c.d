/root/repo/target/debug/examples/natanz-9adfdd1f8399408c.d: crates/core/../../examples/natanz.rs

/root/repo/target/debug/examples/natanz-9adfdd1f8399408c: crates/core/../../examples/natanz.rs

crates/core/../../examples/natanz.rs:
