/root/repo/target/debug/examples/flame_espionage-4ed48f46e7f6bf01.d: crates/core/../../examples/flame_espionage.rs

/root/repo/target/debug/examples/flame_espionage-4ed48f46e7f6bf01: crates/core/../../examples/flame_espionage.rs

crates/core/../../examples/flame_espionage.rs:
