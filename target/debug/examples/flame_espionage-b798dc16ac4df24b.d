/root/repo/target/debug/examples/flame_espionage-b798dc16ac4df24b.d: crates/core/../../examples/flame_espionage.rs Cargo.toml

/root/repo/target/debug/examples/libflame_espionage-b798dc16ac4df24b.rmeta: crates/core/../../examples/flame_espionage.rs Cargo.toml

crates/core/../../examples/flame_espionage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
