/root/repo/target/debug/examples/takedown_resilience-e3fa54f32c5b5643.d: crates/core/../../examples/takedown_resilience.rs Cargo.toml

/root/repo/target/debug/examples/libtakedown_resilience-e3fa54f32c5b5643.rmeta: crates/core/../../examples/takedown_resilience.rs Cargo.toml

crates/core/../../examples/takedown_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
