/root/repo/target/debug/examples/takedown_resilience-291dca12db482433.d: crates/core/../../examples/takedown_resilience.rs

/root/repo/target/debug/examples/takedown_resilience-291dca12db482433: crates/core/../../examples/takedown_resilience.rs

crates/core/../../examples/takedown_resilience.rs:
