/root/repo/target/debug/deps/trends_siblings-b74f8d2c49168508.d: crates/analysis/tests/trends_siblings.rs

/root/repo/target/debug/deps/trends_siblings-b74f8d2c49168508: crates/analysis/tests/trends_siblings.rs

crates/analysis/tests/trends_siblings.rs:
