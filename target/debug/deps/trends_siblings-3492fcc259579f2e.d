/root/repo/target/debug/deps/trends_siblings-3492fcc259579f2e.d: crates/analysis/tests/trends_siblings.rs Cargo.toml

/root/repo/target/debug/deps/libtrends_siblings-3492fcc259579f2e.rmeta: crates/analysis/tests/trends_siblings.rs Cargo.toml

crates/analysis/tests/trends_siblings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
