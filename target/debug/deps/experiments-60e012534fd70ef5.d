/root/repo/target/debug/deps/experiments-60e012534fd70ef5.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-60e012534fd70ef5.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
