/root/repo/target/debug/deps/campaign_stuxnet-30c92cf3bc9bef67.d: crates/core/../../tests/campaign_stuxnet.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_stuxnet-30c92cf3bc9bef67.rmeta: crates/core/../../tests/campaign_stuxnet.rs Cargo.toml

crates/core/../../tests/campaign_stuxnet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
