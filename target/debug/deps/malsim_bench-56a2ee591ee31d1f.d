/root/repo/target/debug/deps/malsim_bench-56a2ee591ee31d1f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_bench-56a2ee591ee31d1f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
