/root/repo/target/debug/deps/malsim_analysis-af3c774df1b5bc56.d: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_analysis-af3c774df1b5bc56.rmeta: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeline.rs:
crates/analysis/src/trends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
