/root/repo/target/debug/deps/malsim-9a0a9b58214eaaa6.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim-9a0a9b58214eaaa6.rmeta: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/scenario.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/armory.rs:
crates/core/src/experiments.rs:
crates/core/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
