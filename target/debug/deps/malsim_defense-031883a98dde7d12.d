/root/repo/target/debug/deps/malsim_defense-031883a98dde7d12.d: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

/root/repo/target/debug/deps/libmalsim_defense-031883a98dde7d12.rlib: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

/root/repo/target/debug/deps/libmalsim_defense-031883a98dde7d12.rmeta: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

crates/defense/src/lib.rs:
crates/defense/src/av.rs:
crates/defense/src/forensics.rs:
crates/defense/src/ids.rs:
crates/defense/src/sinkhole.rs:
