/root/repo/target/debug/deps/malsim_certs-c3c8c4735de1d4e1.d: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_certs-c3c8c4735de1d4e1.rmeta: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs Cargo.toml

crates/certs/src/lib.rs:
crates/certs/src/authority.rs:
crates/certs/src/cert.rs:
crates/certs/src/error.rs:
crates/certs/src/forgery.rs:
crates/certs/src/hash.rs:
crates/certs/src/key.rs:
crates/certs/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
