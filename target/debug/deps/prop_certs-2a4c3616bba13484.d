/root/repo/target/debug/deps/prop_certs-2a4c3616bba13484.d: crates/certs/tests/prop_certs.rs

/root/repo/target/debug/deps/prop_certs-2a4c3616bba13484: crates/certs/tests/prop_certs.rs

crates/certs/tests/prop_certs.rs:
