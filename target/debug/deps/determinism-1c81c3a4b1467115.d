/root/repo/target/debug/deps/determinism-1c81c3a4b1467115.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-1c81c3a4b1467115: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
