/root/repo/target/debug/deps/malsim_analysis-ef86842573edc7c3.d: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

/root/repo/target/debug/deps/libmalsim_analysis-ef86842573edc7c3.rlib: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

/root/repo/target/debug/deps/libmalsim_analysis-ef86842573edc7c3.rmeta: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

crates/analysis/src/lib.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeline.rs:
crates/analysis/src/trends.rs:
