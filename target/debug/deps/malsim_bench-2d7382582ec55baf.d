/root/repo/target/debug/deps/malsim_bench-2d7382582ec55baf.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_bench-2d7382582ec55baf.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
