/root/repo/target/debug/deps/prop_scada-b602cfe3897e2fc2.d: crates/scada/tests/prop_scada.rs

/root/repo/target/debug/deps/prop_scada-b602cfe3897e2fc2: crates/scada/tests/prop_scada.rs

crates/scada/tests/prop_scada.rs:
