/root/repo/target/debug/deps/golden_regression-4e39f5823ae1d25b.d: crates/core/../../tests/golden_regression.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_regression-4e39f5823ae1d25b.rmeta: crates/core/../../tests/golden_regression.rs Cargo.toml

crates/core/../../tests/golden_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
