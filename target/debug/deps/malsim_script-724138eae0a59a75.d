/root/repo/target/debug/deps/malsim_script-724138eae0a59a75.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

/root/repo/target/debug/deps/libmalsim_script-724138eae0a59a75.rlib: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

/root/repo/target/debug/deps/libmalsim_script-724138eae0a59a75.rmeta: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/compiler.rs:
crates/script/src/error.rs:
crates/script/src/lexer.rs:
crates/script/src/parser.rs:
crates/script/src/value.rs:
crates/script/src/vm.rs:
