/root/repo/target/debug/deps/golden_regression-283743ba9afba0a4.d: crates/core/../../tests/golden_regression.rs

/root/repo/target/debug/deps/golden_regression-283743ba9afba0a4: crates/core/../../tests/golden_regression.rs

crates/core/../../tests/golden_regression.rs:
