/root/repo/target/debug/deps/malsim_bench-6ceb98c8c47c5f85.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmalsim_bench-6ceb98c8c47c5f85.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmalsim_bench-6ceb98c8c47c5f85.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
