/root/repo/target/debug/deps/prop_net-e5f97fdf6173bf43.d: crates/net/tests/prop_net.rs Cargo.toml

/root/repo/target/debug/deps/libprop_net-e5f97fdf6173bf43.rmeta: crates/net/tests/prop_net.rs Cargo.toml

crates/net/tests/prop_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
