/root/repo/target/debug/deps/malsim_net-254f64c5125d1b9b.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_net-254f64c5125d1b9b.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/bluetooth.rs:
crates/net/src/dns.rs:
crates/net/src/http.rs:
crates/net/src/lateral.rs:
crates/net/src/retry.rs:
crates/net/src/topology.rs:
crates/net/src/winupdate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
