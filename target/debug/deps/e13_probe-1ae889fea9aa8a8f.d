/root/repo/target/debug/deps/e13_probe-1ae889fea9aa8a8f.d: crates/core/../../tests/e13_probe.rs

/root/repo/target/debug/deps/e13_probe-1ae889fea9aa8a8f: crates/core/../../tests/e13_probe.rs

crates/core/../../tests/e13_probe.rs:
