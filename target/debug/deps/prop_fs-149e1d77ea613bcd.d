/root/repo/target/debug/deps/prop_fs-149e1d77ea613bcd.d: crates/os/tests/prop_fs.rs

/root/repo/target/debug/deps/prop_fs-149e1d77ea613bcd: crates/os/tests/prop_fs.rs

crates/os/tests/prop_fs.rs:
