/root/repo/target/debug/deps/malsim_analysis-533c50088fe3a516.d: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_analysis-533c50088fe3a516.rmeta: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeline.rs:
crates/analysis/src/trends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
