/root/repo/target/debug/deps/malsim_script-b03384b2e26de94a.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

/root/repo/target/debug/deps/malsim_script-b03384b2e26de94a: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/compiler.rs:
crates/script/src/error.rs:
crates/script/src/lexer.rs:
crates/script/src/parser.rs:
crates/script/src/value.rs:
crates/script/src/vm.rs:
