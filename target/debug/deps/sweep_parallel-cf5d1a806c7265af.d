/root/repo/target/debug/deps/sweep_parallel-cf5d1a806c7265af.d: crates/core/../../tests/sweep_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_parallel-cf5d1a806c7265af.rmeta: crates/core/../../tests/sweep_parallel.rs Cargo.toml

crates/core/../../tests/sweep_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
