/root/repo/target/debug/deps/malsim_kernel-5a01816abc6303d7.d: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_kernel-5a01816abc6303d7.rmeta: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/metrics.rs:
crates/kernel/src/rng.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/time.rs:
crates/kernel/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
