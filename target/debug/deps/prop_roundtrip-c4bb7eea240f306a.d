/root/repo/target/debug/deps/prop_roundtrip-c4bb7eea240f306a.d: crates/pe/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-c4bb7eea240f306a: crates/pe/tests/prop_roundtrip.rs

crates/pe/tests/prop_roundtrip.rs:
