/root/repo/target/debug/deps/malsim_pe-b43f5032ae1c23fe.d: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

/root/repo/target/debug/deps/malsim_pe-b43f5032ae1c23fe: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

crates/pe/src/lib.rs:
crates/pe/src/builder.rs:
crates/pe/src/error.rs:
crates/pe/src/image.rs:
crates/pe/src/xor.rs:
