/root/repo/target/debug/deps/malsim_certs-371f9045bf644d14.d: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

/root/repo/target/debug/deps/malsim_certs-371f9045bf644d14: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

crates/certs/src/lib.rs:
crates/certs/src/authority.rs:
crates/certs/src/cert.rs:
crates/certs/src/error.rs:
crates/certs/src/forgery.rs:
crates/certs/src/hash.rs:
crates/certs/src/key.rs:
crates/certs/src/store.rs:
