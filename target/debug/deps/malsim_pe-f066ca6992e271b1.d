/root/repo/target/debug/deps/malsim_pe-f066ca6992e271b1.d: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

/root/repo/target/debug/deps/libmalsim_pe-f066ca6992e271b1.rlib: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

/root/repo/target/debug/deps/libmalsim_pe-f066ca6992e271b1.rmeta: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs

crates/pe/src/lib.rs:
crates/pe/src/builder.rs:
crates/pe/src/error.rs:
crates/pe/src/image.rs:
crates/pe/src/xor.rs:
