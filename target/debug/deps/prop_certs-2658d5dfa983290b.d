/root/repo/target/debug/deps/prop_certs-2658d5dfa983290b.d: crates/certs/tests/prop_certs.rs Cargo.toml

/root/repo/target/debug/deps/libprop_certs-2658d5dfa983290b.rmeta: crates/certs/tests/prop_certs.rs Cargo.toml

crates/certs/tests/prop_certs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
