/root/repo/target/debug/deps/prop_script-01c124667993aaff.d: crates/script/tests/prop_script.rs Cargo.toml

/root/repo/target/debug/deps/libprop_script-01c124667993aaff.rmeta: crates/script/tests/prop_script.rs Cargo.toml

crates/script/tests/prop_script.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
