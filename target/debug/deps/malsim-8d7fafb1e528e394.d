/root/repo/target/debug/deps/malsim-8d7fafb1e528e394.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim-8d7fafb1e528e394.rmeta: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/armory.rs:
crates/core/src/experiments.rs:
crates/core/src/golden.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
