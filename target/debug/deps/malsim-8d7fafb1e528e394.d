/root/repo/target/debug/deps/malsim-8d7fafb1e528e394.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim-8d7fafb1e528e394.rmeta: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/scenario.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/armory.rs:
crates/core/src/experiments.rs:
crates/core/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
