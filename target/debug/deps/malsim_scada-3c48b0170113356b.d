/root/repo/target/debug/deps/malsim_scada-3c48b0170113356b.d: crates/scada/src/lib.rs crates/scada/src/cascade.rs crates/scada/src/centrifuge.rs crates/scada/src/drive.rs crates/scada/src/hmi.rs crates/scada/src/plc.rs crates/scada/src/step7.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_scada-3c48b0170113356b.rmeta: crates/scada/src/lib.rs crates/scada/src/cascade.rs crates/scada/src/centrifuge.rs crates/scada/src/drive.rs crates/scada/src/hmi.rs crates/scada/src/plc.rs crates/scada/src/step7.rs Cargo.toml

crates/scada/src/lib.rs:
crates/scada/src/cascade.rs:
crates/scada/src/centrifuge.rs:
crates/scada/src/drive.rs:
crates/scada/src/hmi.rs:
crates/scada/src/plc.rs:
crates/scada/src/step7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
