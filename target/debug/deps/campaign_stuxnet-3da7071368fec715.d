/root/repo/target/debug/deps/campaign_stuxnet-3da7071368fec715.d: crates/core/../../tests/campaign_stuxnet.rs

/root/repo/target/debug/deps/campaign_stuxnet-3da7071368fec715: crates/core/../../tests/campaign_stuxnet.rs

crates/core/../../tests/campaign_stuxnet.rs:
