/root/repo/target/debug/deps/experiments-e44a4c00c07edb8d.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/experiments-e44a4c00c07edb8d: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
