/root/repo/target/debug/deps/experiments_shape-a350624be0dabafd.d: crates/core/../../tests/experiments_shape.rs

/root/repo/target/debug/deps/experiments_shape-a350624be0dabafd: crates/core/../../tests/experiments_shape.rs

crates/core/../../tests/experiments_shape.rs:
