/root/repo/target/debug/deps/malsim_certs-bdd52799c6fd2f70.d: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

/root/repo/target/debug/deps/libmalsim_certs-bdd52799c6fd2f70.rlib: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

/root/repo/target/debug/deps/libmalsim_certs-bdd52799c6fd2f70.rmeta: crates/certs/src/lib.rs crates/certs/src/authority.rs crates/certs/src/cert.rs crates/certs/src/error.rs crates/certs/src/forgery.rs crates/certs/src/hash.rs crates/certs/src/key.rs crates/certs/src/store.rs

crates/certs/src/lib.rs:
crates/certs/src/authority.rs:
crates/certs/src/cert.rs:
crates/certs/src/error.rs:
crates/certs/src/forgery.rs:
crates/certs/src/hash.rs:
crates/certs/src/key.rs:
crates/certs/src/store.rs:
