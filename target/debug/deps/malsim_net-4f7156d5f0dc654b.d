/root/repo/target/debug/deps/malsim_net-4f7156d5f0dc654b.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

/root/repo/target/debug/deps/malsim_net-4f7156d5f0dc654b: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/bluetooth.rs:
crates/net/src/dns.rs:
crates/net/src/http.rs:
crates/net/src/lateral.rs:
crates/net/src/retry.rs:
crates/net/src/topology.rs:
crates/net/src/winupdate.rs:
