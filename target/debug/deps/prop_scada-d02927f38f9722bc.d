/root/repo/target/debug/deps/prop_scada-d02927f38f9722bc.d: crates/scada/tests/prop_scada.rs Cargo.toml

/root/repo/target/debug/deps/libprop_scada-d02927f38f9722bc.rmeta: crates/scada/tests/prop_scada.rs Cargo.toml

crates/scada/tests/prop_scada.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
