/root/repo/target/debug/deps/sweep_parallel-da2f47a76d8663ba.d: crates/core/../../tests/sweep_parallel.rs

/root/repo/target/debug/deps/sweep_parallel-da2f47a76d8663ba: crates/core/../../tests/sweep_parallel.rs

crates/core/../../tests/sweep_parallel.rs:
