/root/repo/target/debug/deps/malsim_os-3b3da8931a484422.d: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

/root/repo/target/debug/deps/libmalsim_os-3b3da8931a484422.rlib: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

/root/repo/target/debug/deps/libmalsim_os-3b3da8931a484422.rmeta: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs

crates/os/src/lib.rs:
crates/os/src/disk.rs:
crates/os/src/error.rs:
crates/os/src/fs.rs:
crates/os/src/host.rs:
crates/os/src/patches.rs:
crates/os/src/path.rs:
crates/os/src/registry.rs:
crates/os/src/services.rs:
crates/os/src/usb.rs:
