/root/repo/target/debug/deps/prop_script-1403909bd6acdfc4.d: crates/script/tests/prop_script.rs

/root/repo/target/debug/deps/prop_script-1403909bd6acdfc4: crates/script/tests/prop_script.rs

crates/script/tests/prop_script.rs:
