/root/repo/target/debug/deps/malsim-0a6ecf7e62152550.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libmalsim-0a6ecf7e62152550.rlib: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libmalsim-0a6ecf7e62152550.rmeta: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/golden.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/armory.rs:
crates/core/src/experiments.rs:
crates/core/src/golden.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
