/root/repo/target/debug/deps/malsim_pe-94711c47c13d3eec.d: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_pe-94711c47c13d3eec.rmeta: crates/pe/src/lib.rs crates/pe/src/builder.rs crates/pe/src/error.rs crates/pe/src/image.rs crates/pe/src/xor.rs Cargo.toml

crates/pe/src/lib.rs:
crates/pe/src/builder.rs:
crates/pe/src/error.rs:
crates/pe/src/image.rs:
crates/pe/src/xor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
