/root/repo/target/debug/deps/prop_fs-845eedf3e3a1a79c.d: crates/os/tests/prop_fs.rs Cargo.toml

/root/repo/target/debug/deps/libprop_fs-845eedf3e3a1a79c.rmeta: crates/os/tests/prop_fs.rs Cargo.toml

crates/os/tests/prop_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
