/root/repo/target/debug/deps/malsim_kernel-169ec39dba9ad779.d: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/libmalsim_kernel-169ec39dba9ad779.rlib: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/libmalsim_kernel-169ec39dba9ad779.rmeta: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/metrics.rs:
crates/kernel/src/rng.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/time.rs:
crates/kernel/src/trace.rs:
