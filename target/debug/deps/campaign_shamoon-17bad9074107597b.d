/root/repo/target/debug/deps/campaign_shamoon-17bad9074107597b.d: crates/core/../../tests/campaign_shamoon.rs

/root/repo/target/debug/deps/campaign_shamoon-17bad9074107597b: crates/core/../../tests/campaign_shamoon.rs

crates/core/../../tests/campaign_shamoon.rs:
