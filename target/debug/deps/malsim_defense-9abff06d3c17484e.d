/root/repo/target/debug/deps/malsim_defense-9abff06d3c17484e.d: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_defense-9abff06d3c17484e.rmeta: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs Cargo.toml

crates/defense/src/lib.rs:
crates/defense/src/av.rs:
crates/defense/src/forensics.rs:
crates/defense/src/ids.rs:
crates/defense/src/sinkhole.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
