/root/repo/target/debug/deps/campaign_flame-2f92c5e0779acd89.d: crates/core/../../tests/campaign_flame.rs

/root/repo/target/debug/deps/campaign_flame-2f92c5e0779acd89: crates/core/../../tests/campaign_flame.rs

crates/core/../../tests/campaign_flame.rs:
