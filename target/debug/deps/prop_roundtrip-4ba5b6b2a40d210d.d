/root/repo/target/debug/deps/prop_roundtrip-4ba5b6b2a40d210d.d: crates/pe/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-4ba5b6b2a40d210d.rmeta: crates/pe/tests/prop_roundtrip.rs Cargo.toml

crates/pe/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
