/root/repo/target/debug/deps/prop_defense-78aa8d4c989842fb.d: crates/defense/tests/prop_defense.rs

/root/repo/target/debug/deps/prop_defense-78aa8d4c989842fb: crates/defense/tests/prop_defense.rs

crates/defense/tests/prop_defense.rs:
