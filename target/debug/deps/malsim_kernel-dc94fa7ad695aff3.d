/root/repo/target/debug/deps/malsim_kernel-dc94fa7ad695aff3.d: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/malsim_kernel-dc94fa7ad695aff3: crates/kernel/src/lib.rs crates/kernel/src/fault.rs crates/kernel/src/ids.rs crates/kernel/src/metrics.rs crates/kernel/src/rng.rs crates/kernel/src/sched.rs crates/kernel/src/time.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/metrics.rs:
crates/kernel/src/rng.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/time.rs:
crates/kernel/src/trace.rs:
