/root/repo/target/debug/deps/malsim_os-e950e31b2f2ca0e5.d: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_os-e950e31b2f2ca0e5.rmeta: crates/os/src/lib.rs crates/os/src/disk.rs crates/os/src/error.rs crates/os/src/fs.rs crates/os/src/host.rs crates/os/src/patches.rs crates/os/src/path.rs crates/os/src/registry.rs crates/os/src/services.rs crates/os/src/usb.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/disk.rs:
crates/os/src/error.rs:
crates/os/src/fs.rs:
crates/os/src/host.rs:
crates/os/src/patches.rs:
crates/os/src/path.rs:
crates/os/src/registry.rs:
crates/os/src/services.rs:
crates/os/src/usb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
