/root/repo/target/debug/deps/campaign_shamoon-4b9d19fdcd317e3e.d: crates/core/../../tests/campaign_shamoon.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_shamoon-4b9d19fdcd317e3e.rmeta: crates/core/../../tests/campaign_shamoon.rs Cargo.toml

crates/core/../../tests/campaign_shamoon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
