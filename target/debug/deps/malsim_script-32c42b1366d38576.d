/root/repo/target/debug/deps/malsim_script-32c42b1366d38576.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_script-32c42b1366d38576.rmeta: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs Cargo.toml

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/compiler.rs:
crates/script/src/error.rs:
crates/script/src/lexer.rs:
crates/script/src/parser.rs:
crates/script/src/value.rs:
crates/script/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
