/root/repo/target/debug/deps/malsim_script-b9ae1bf3ab0b9ea2.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libmalsim_script-b9ae1bf3ab0b9ea2.rmeta: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/compiler.rs crates/script/src/error.rs crates/script/src/lexer.rs crates/script/src/parser.rs crates/script/src/value.rs crates/script/src/vm.rs Cargo.toml

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/compiler.rs:
crates/script/src/error.rs:
crates/script/src/lexer.rs:
crates/script/src/parser.rs:
crates/script/src/value.rs:
crates/script/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
