/root/repo/target/debug/deps/malsim_defense-8764635623a3e4b0.d: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

/root/repo/target/debug/deps/malsim_defense-8764635623a3e4b0: crates/defense/src/lib.rs crates/defense/src/av.rs crates/defense/src/forensics.rs crates/defense/src/ids.rs crates/defense/src/sinkhole.rs

crates/defense/src/lib.rs:
crates/defense/src/av.rs:
crates/defense/src/forensics.rs:
crates/defense/src/ids.rs:
crates/defense/src/sinkhole.rs:
