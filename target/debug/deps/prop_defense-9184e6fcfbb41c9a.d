/root/repo/target/debug/deps/prop_defense-9184e6fcfbb41c9a.d: crates/defense/tests/prop_defense.rs Cargo.toml

/root/repo/target/debug/deps/libprop_defense-9184e6fcfbb41c9a.rmeta: crates/defense/tests/prop_defense.rs Cargo.toml

crates/defense/tests/prop_defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
