/root/repo/target/debug/deps/substrates-87fef3287b2dfbaf.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/substrates-87fef3287b2dfbaf: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
