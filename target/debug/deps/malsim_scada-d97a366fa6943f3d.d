/root/repo/target/debug/deps/malsim_scada-d97a366fa6943f3d.d: crates/scada/src/lib.rs crates/scada/src/cascade.rs crates/scada/src/centrifuge.rs crates/scada/src/drive.rs crates/scada/src/hmi.rs crates/scada/src/plc.rs crates/scada/src/step7.rs

/root/repo/target/debug/deps/libmalsim_scada-d97a366fa6943f3d.rlib: crates/scada/src/lib.rs crates/scada/src/cascade.rs crates/scada/src/centrifuge.rs crates/scada/src/drive.rs crates/scada/src/hmi.rs crates/scada/src/plc.rs crates/scada/src/step7.rs

/root/repo/target/debug/deps/libmalsim_scada-d97a366fa6943f3d.rmeta: crates/scada/src/lib.rs crates/scada/src/cascade.rs crates/scada/src/centrifuge.rs crates/scada/src/drive.rs crates/scada/src/hmi.rs crates/scada/src/plc.rs crates/scada/src/step7.rs

crates/scada/src/lib.rs:
crates/scada/src/cascade.rs:
crates/scada/src/centrifuge.rs:
crates/scada/src/drive.rs:
crates/scada/src/hmi.rs:
crates/scada/src/plc.rs:
crates/scada/src/step7.rs:
