/root/repo/target/debug/deps/malsim_analysis-eed87d5d665a5826.d: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

/root/repo/target/debug/deps/malsim_analysis-eed87d5d665a5826: crates/analysis/src/lib.rs crates/analysis/src/table.rs crates/analysis/src/timeline.rs crates/analysis/src/trends.rs

crates/analysis/src/lib.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeline.rs:
crates/analysis/src/trends.rs:
