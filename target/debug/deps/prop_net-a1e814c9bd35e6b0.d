/root/repo/target/debug/deps/prop_net-a1e814c9bd35e6b0.d: crates/net/tests/prop_net.rs

/root/repo/target/debug/deps/prop_net-a1e814c9bd35e6b0: crates/net/tests/prop_net.rs

crates/net/tests/prop_net.rs:
