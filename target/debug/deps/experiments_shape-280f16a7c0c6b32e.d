/root/repo/target/debug/deps/experiments_shape-280f16a7c0c6b32e.d: crates/core/../../tests/experiments_shape.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_shape-280f16a7c0c6b32e.rmeta: crates/core/../../tests/experiments_shape.rs Cargo.toml

crates/core/../../tests/experiments_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
