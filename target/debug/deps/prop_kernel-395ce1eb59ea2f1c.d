/root/repo/target/debug/deps/prop_kernel-395ce1eb59ea2f1c.d: crates/kernel/tests/prop_kernel.rs

/root/repo/target/debug/deps/prop_kernel-395ce1eb59ea2f1c: crates/kernel/tests/prop_kernel.rs

crates/kernel/tests/prop_kernel.rs:
