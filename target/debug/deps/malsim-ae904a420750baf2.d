/root/repo/target/debug/deps/malsim-ae904a420750baf2.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/scenario.rs

/root/repo/target/debug/deps/malsim-ae904a420750baf2: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/armory.rs crates/core/src/experiments.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/armory.rs:
crates/core/src/experiments.rs:
crates/core/src/scenario.rs:
