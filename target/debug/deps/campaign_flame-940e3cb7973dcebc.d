/root/repo/target/debug/deps/campaign_flame-940e3cb7973dcebc.d: crates/core/../../tests/campaign_flame.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_flame-940e3cb7973dcebc.rmeta: crates/core/../../tests/campaign_flame.rs Cargo.toml

crates/core/../../tests/campaign_flame.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
