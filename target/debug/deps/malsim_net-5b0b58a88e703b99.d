/root/repo/target/debug/deps/malsim_net-5b0b58a88e703b99.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

/root/repo/target/debug/deps/libmalsim_net-5b0b58a88e703b99.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

/root/repo/target/debug/deps/libmalsim_net-5b0b58a88e703b99.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/bluetooth.rs crates/net/src/dns.rs crates/net/src/http.rs crates/net/src/lateral.rs crates/net/src/retry.rs crates/net/src/topology.rs crates/net/src/winupdate.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/bluetooth.rs:
crates/net/src/dns.rs:
crates/net/src/http.rs:
crates/net/src/lateral.rs:
crates/net/src/retry.rs:
crates/net/src/topology.rs:
crates/net/src/winupdate.rs:
