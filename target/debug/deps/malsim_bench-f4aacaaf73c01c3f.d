/root/repo/target/debug/deps/malsim_bench-f4aacaaf73c01c3f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/malsim_bench-f4aacaaf73c01c3f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
