//! E13: how the exfiltration pipeline survives a coordinated C&C takedown.
//!
//! Sweeps the fraction of the platform's 22 servers that a
//! [`SinkholeCampaign`](malsim_defense::sinkhole::SinkholeCampaign) seizes
//! (DNS records plus permanent fault-plane windows) and reports direct vs
//! USB-ferried exfiltration volume per week.
//!
//! Usage: `cargo run --release --example takedown_resilience [seed] [clients] [days] [threads] [--profile]`
//!
//! The sweep runs its fractions through the parallel runner; `threads`
//! (default: `MALSIM_THREADS`, else the machine's core count) is a pure
//! throughput knob — output is byte-identical at any value. `--profile`
//! additionally prints the scheduler's min/median/max dispatch roll-up
//! across the grid (host-clock timings; they never change the rows).
//!
//! Supervision flags (any of them switches to the supervised runner, which
//! checkpoints every point and emits a canonical-JSON report):
//! * `--ckpt <path>` — checkpoint file (default `sweep.ckpt`);
//! * `--resume` — restore completed points from the checkpoint and re-run
//!   only missing/poisoned ones; the final report is byte-identical to an
//!   uninterrupted run at any thread count;
//! * `--out <path>` — write the report there instead of stdout;
//! * `--retries <n>` — re-attempts for a panicking point before quarantine;
//! * `--event-budget <n>` — deterministic per-point event cap (points over
//!   it are reported as truncated);
//! * `--watchdog-ms <n>` — host-clock per-point deadline (nondeterministic;
//!   never use where outputs are byte-compared);
//! * `--check-invariants` — run the kernel + world invariant checker inside
//!   every point and record violations in the report;
//! * `--point-sleep-ms <n>` — sleep before each point (only to widen the
//!   kill window in resume drills).

use std::path::PathBuf;

use malsim::experiments::{
    e13_takedown_resilience_profiled_t, e13_takedown_resilience_supervised, e13_takedown_resilience_t, grids,
    SupervisedSweepOpts,
};
use malsim::sweep;

fn main() {
    let mut profile = false;
    let mut supervised = false;
    let mut resume = false;
    let mut ckpt: Option<String> = None;
    let mut out: Option<String> = None;
    let mut supervisor = sweep::SweepSupervisor::default();
    let mut positional: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} takes a value");
            std::process::exit(2);
        })
    };
    let parse = |text: String, flag: &str| -> u64 {
        text.parse().unwrap_or_else(|_| {
            eprintln!("{flag} takes an integer, got {text:?}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => profile = true,
            "--ckpt" => {
                ckpt = Some(value(&mut args, "--ckpt"));
                supervised = true;
            }
            "--out" => {
                out = Some(value(&mut args, "--out"));
                supervised = true;
            }
            "--resume" => {
                resume = true;
                supervised = true;
            }
            "--retries" => {
                supervisor.retries = parse(value(&mut args, "--retries"), "--retries") as u32;
                supervised = true;
            }
            "--event-budget" => {
                supervisor.event_budget = Some(parse(value(&mut args, "--event-budget"), "--event-budget"));
                supervised = true;
            }
            "--watchdog-ms" => {
                supervisor.deadline_ms = Some(parse(value(&mut args, "--watchdog-ms"), "--watchdog-ms"));
                supervised = true;
            }
            "--check-invariants" => {
                supervisor.check_invariants = true;
                supervised = true;
            }
            "--point-sleep-ms" => {
                supervisor.stagger_ms = parse(value(&mut args, "--point-sleep-ms"), "--point-sleep-ms");
                supervised = true;
            }
            other if !other.starts_with("--") => positional.push(other.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: takedown_resilience [seed] [clients] [days] [threads] [--profile] \
                     [--ckpt <path>] [--resume] [--out <path>] [--retries <n>] [--event-budget <n>] \
                     [--watchdog-ms <n>] [--check-invariants] [--point-sleep-ms <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional.next().and_then(|a| a.parse().ok()).unwrap_or(11);
    let clients: usize = positional.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let days: u64 = positional.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let threads: usize =
        positional.next().and_then(|a| a.parse().ok()).unwrap_or_else(sweep::threads_from_env);

    if supervised {
        let ckpt_path = PathBuf::from(ckpt.unwrap_or_else(|| "sweep.ckpt".to_owned()));
        let opts = SupervisedSweepOpts {
            pool: sweep::PoolConfig::explicit(threads),
            supervisor,
            ckpt_path: &ckpt_path,
            resume,
        };
        let outcomes =
            e13_takedown_resilience_supervised(seed, clients, days, grids::E13_SINKHOLE_FRACTIONS, &opts)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
        eprintln!(
            "E13 supervised sweep done: {} point(s), {} restored from {}, {} damaged line(s) skipped",
            outcomes.points.len(),
            outcomes.resumed_points,
            ckpt_path.display(),
            outcomes.skipped_lines,
        );
        let text = outcomes.report().to_canonical_string();
        match out {
            Some(path) => {
                std::fs::write(&path, &text).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("wrote report to {path}");
            }
            None => print!("{text}"),
        }
        return;
    }

    println!(
        "E13 — takedown resilience (seed {seed}, {clients} clients, {days} days, {threads} worker thread(s))"
    );
    println!();
    let (rows, profiles) = if profile {
        let (rows, profiles) =
            e13_takedown_resilience_profiled_t(seed, clients, days, grids::E13_SINKHOLE_FRACTIONS, threads);
        (rows, Some(profiles))
    } else {
        (e13_takedown_resilience_t(seed, clients, days, grids::E13_SINKHOLE_FRACTIONS, threads), None)
    };
    println!("sinkholed  servers  domains  reachable  direct MB/wk  ferried MB/wk  total MB/wk  backlog");
    for r in rows {
        println!(
            "{:>9.2}  {:>7}  {:>7}  {:>9.2}  {:>12.1}  {:>13.1}  {:>11.1}  {:>7}",
            r.sinkhole_fraction,
            r.servers_seized,
            r.domains_seized,
            r.reachable_clients,
            r.direct_bytes_week / 1e6,
            r.ferried_bytes_week / 1e6,
            r.total_bytes_week / 1e6,
            r.stick_backlog,
        );
    }
    println!();
    println!("Direct volume degrades as servers fall; the hidden-USB ferry recovers");
    println!("blocked clients' documents at every fraction below 1.0 (backlog 0).");

    if let Some(profiles) = profiles {
        println!();
        print!("{}", sweep::profile_rollup(&profiles).render());
    }
}
