//! E13: how the exfiltration pipeline survives a coordinated C&C takedown.
//!
//! Sweeps the fraction of the platform's 22 servers that a
//! [`SinkholeCampaign`](malsim_defense::sinkhole::SinkholeCampaign) seizes
//! (DNS records plus permanent fault-plane windows) and reports direct vs
//! USB-ferried exfiltration volume per week.
//!
//! Usage: `cargo run --release --example takedown_resilience [seed] [clients] [days] [threads] [--profile]`
//!
//! The sweep runs its fractions through the parallel runner; `threads`
//! (default: `MALSIM_THREADS`, else the machine's core count) is a pure
//! throughput knob — output is byte-identical at any value. `--profile`
//! additionally prints the scheduler's min/median/max dispatch roll-up
//! across the grid (host-clock timings; they never change the rows).

use malsim::experiments::{e13_takedown_resilience_profiled_t, e13_takedown_resilience_t, grids};
use malsim::sweep;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let profile = raw.iter().any(|a| a == "--profile");
    let mut args = raw.iter().filter(|a| *a != "--profile");
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let days: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(sweep::threads_from_env);

    println!(
        "E13 — takedown resilience (seed {seed}, {clients} clients, {days} days, {threads} worker thread(s))"
    );
    println!();
    let (rows, profiles) = if profile {
        let (rows, profiles) =
            e13_takedown_resilience_profiled_t(seed, clients, days, grids::E13_SINKHOLE_FRACTIONS, threads);
        (rows, Some(profiles))
    } else {
        (e13_takedown_resilience_t(seed, clients, days, grids::E13_SINKHOLE_FRACTIONS, threads), None)
    };
    println!("sinkholed  servers  domains  reachable  direct MB/wk  ferried MB/wk  total MB/wk  backlog");
    for r in rows {
        println!(
            "{:>9.2}  {:>7}  {:>7}  {:>9.2}  {:>12.1}  {:>13.1}  {:>11.1}  {:>7}",
            r.sinkhole_fraction,
            r.servers_seized,
            r.domains_seized,
            r.reachable_clients,
            r.direct_bytes_week / 1e6,
            r.ferried_bytes_week / 1e6,
            r.total_bytes_week / 1e6,
            r.stick_backlog,
        );
    }
    println!();
    println!("Direct volume degrades as servers fall; the hidden-USB ferry recovers");
    println!("blocked clients' documents at every fraction below 1.0 (backlog 0).");

    if let Some(profiles) = profiles {
        println!();
        print!("{}", sweep::profile_rollup(&profiles).render());
    }
}
