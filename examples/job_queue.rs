//! Multi-tenant sweep jobs: three tenants share one worker pool.
//!
//! * `atlas` (research, normal priority) sweeps E2 patch rates;
//! * `bolt` (ops, low priority) runs a wider E2 sweep and is cancelled
//!   mid-grid after `--cancel-after` of its points complete;
//! * `crow` (red team, high priority) replays scenario scripts — including
//!   a fuel bomb and a forbidden-capability probe — whose faults degrade
//!   only crow's own points.
//!
//! A fourth submission over the queue's capacity is shed with a typed
//! rejection. With `--journal`, every state transition is fsynced so a
//! killed run resumed with `--resume` reproduces finished jobs'
//! reports byte-identically without re-evaluating their points.
//!
//! Usage: `cargo run --release --example job_queue [seed] [threads]
//!   [--journal <path>] [--resume] [--out-dir <dir>]
//!   [--point-sleep-ms <n>] [--cancel-after <n>] [--metrics-out <dir>]`
//!
//! With `--metrics-out <dir>` (or `MALSIM_METRICS=1`) the telemetry plane is
//! armed; the directory receives `metrics.prom` (Prometheus text exposition),
//! `metrics.json` (full snapshot), `metrics_deterministic.json` (the
//! deterministic section only — byte-identical across runs and thread
//! counts), and `metrics.jsonl` (one deterministic sample per point
//! boundary).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use malsim::experiments::e2_zero_day_ablation_t;
use malsim::jobs::{JobBudget, JobQueue, JobSpec, Priority, QueueConfig, SeedPolicy};
use malsim::report::Json;
use malsim::scenario::ScenarioBuilder;
use malsim::script_api;
use malsim::sweep::{PointRun, PoolConfig};
use malsim::telemetry;

/// The red-team tenant's script suite: two benign probes bracketing a fuel
/// bomb and a capability violation.
const CROW_SCRIPTS: &[&str] = &[
    "#! name: census\nreturn host_count()",
    "#! name: fuel-bomb\n#! fuel: 4000\nwhile true do end",
    "#! name: detonator\ndetonate(\"ws-0000\")",
    "#! name: scan\n#! grant: fs_scan\nreturn len(scan_files(\".docx\"))",
];

fn patch_grid(rates: &[f64]) -> Vec<Json> {
    rates.iter().map(|&r| Json::obj([("patch_rate", Json::F64(r))])).collect()
}

fn main() {
    let mut journal: Option<PathBuf> = None;
    let mut resume = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut stagger_ms = 0u64;
    let mut cancel_after = 2usize;
    let mut positional: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} takes a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" => journal = Some(PathBuf::from(value(&mut args, "--journal"))),
            "--resume" => resume = true,
            "--out-dir" => out_dir = Some(PathBuf::from(value(&mut args, "--out-dir"))),
            "--point-sleep-ms" => stagger_ms = value(&mut args, "--point-sleep-ms").parse().unwrap_or(0),
            "--cancel-after" => cancel_after = value(&mut args, "--cancel-after").parse().unwrap_or(2),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value(&mut args, "--metrics-out"))),
            other if !other.starts_with("--") => positional.push(other.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: job_queue [seed] [threads] [--journal <path>] [--resume] \
                     [--out-dir <dir>] [--point-sleep-ms <n>] [--cancel-after <n>] \
                     [--metrics-out <dir>]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let pool = match positional.next().and_then(|a| a.parse().ok()) {
        Some(n) => PoolConfig::explicit(n),
        None => PoolConfig::from_env(),
    };

    // Arm the telemetry plane before any simulation exists so every kernel
    // instance picks up the hook. `MALSIM_METRICS=1` arms without writing.
    telemetry::arm_if_env();
    if let Some(dir) = &metrics_out {
        telemetry::arm();
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        });
        telemetry::set_jsonl_sink(&dir.join("metrics.jsonl")).unwrap_or_else(|e| {
            eprintln!("error: cannot open metrics.jsonl: {e}");
            std::process::exit(1);
        });
    }

    let pacing = JobBudget { stagger_ms, ..JobBudget::default() };
    let cfg = QueueConfig { pool, max_jobs: 3, journal, resume, ..QueueConfig::default() };
    let mut queue = JobQueue::new(cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let spec = |job_id: &str, tenant: &str, priority, grid| JobSpec {
        job_id: job_id.to_owned(),
        tenant: tenant.to_owned(),
        experiment: "job-queue-demo",
        base_seed: seed,
        seed_policy: SeedPolicy::Derived,
        priority,
        budget: pacing,
        grid,
    };
    queue
        .submit(spec("atlas", "research", Priority::Normal, patch_grid(&[0.0, 0.25, 0.5, 0.75, 1.0])))
        .expect("atlas fits");
    let bolt = queue
        .submit(spec(
            "bolt",
            "ops",
            Priority::Low,
            patch_grid(&[0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875]),
        ))
        .expect("bolt fits");
    let crow_grid = CROW_SCRIPTS
        .iter()
        .map(|src| Json::obj([("kind", "script".into()), ("src", (*src).into())]))
        .collect();
    queue.submit(spec("crow", "red-team", Priority::High, crow_grid)).expect("crow fits");

    // Admission control in action: the queue holds three jobs; the fourth
    // tenant is shed with a typed reason instead of queueing unbounded work.
    match queue.submit(spec("dune", "walk-in", Priority::Normal, patch_grid(&[0.5]))) {
        Ok(_) => unreachable!("the queue capacity is 3"),
        Err(rejected) => eprintln!("load shed: {rejected}"),
    }

    // `bolt` is cancelled from inside the grid once `cancel_after` of its
    // points have completed; everyone else's results are untouched.
    let bolt_done = AtomicUsize::new(0);
    let run = queue
        .run(|jp| {
            let out = match jp.params.get("kind").and_then(Json::as_str) {
                Some("script") => {
                    let src = jp.params.get("src").and_then(Json::as_str).expect("script src");
                    let (mut world, mut sim) = ScenarioBuilder::new(jp.seed()).office_lan(3);
                    script_api::run_source(src, &mut world, &mut sim).map(|r| PointRun::complete(r.row()))
                }
                _ => {
                    let rate = jp.params.get("patch_rate").and_then(Json::as_f64).expect("patch_rate");
                    let rows = e2_zero_day_ablation_t(jp.seed(), 6, 3, &[rate], 1);
                    Ok(PointRun::complete(rows[0].to_json()))
                }
            };
            if jp.job_id == "bolt" && bolt_done.fetch_add(1, Ordering::SeqCst) + 1 >= cancel_after {
                bolt.token.cancel();
            }
            out
        })
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    if run.skipped_lines > 0 {
        eprintln!("journal: skipped {} damaged line(s)", run.skipped_lines);
    }
    println!("job      tenant    priority  status     points  evaluated  cached  resumed");
    for o in &run.outcomes {
        println!(
            "{:<8} {:<9} {:<9} {:<10} {:>6}  {:>9}  {:>6}  {:>7}",
            o.job_id,
            o.tenant,
            o.priority.label(),
            o.status.label(),
            o.points.len(),
            o.evaluated_points,
            o.cached_points,
            o.resumed_points,
        );
    }
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        });
        for o in &run.outcomes {
            let path = dir.join(format!("{}.json", o.job_id));
            std::fs::write(&path, o.report().to_canonical_string()).unwrap_or_else(|e| {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            });
        }
        println!("wrote {} report(s) to {}", run.outcomes.len(), dir.display());
    }
    if let Some(dir) = metrics_out {
        telemetry::clear_jsonl_sink();
        let write = |name: &str, body: String| {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap_or_else(|e| {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            });
        };
        write("metrics.prom", telemetry::render_prometheus());
        write("metrics.json", telemetry::render_snapshot());
        write("metrics_deterministic.json", telemetry::render_deterministic());
        println!("wrote metrics to {}", dir.display());
    }
}
