//! Writing a campaign step as a sandboxed Flua scenario script.
//!
//! Demonstrates the capability-gated script API: a benign script that scans
//! and exfiltrates under its declared grants, a rogue script stopped cold by
//! the capability gate, and a small fallible sweep where hostile scripts
//! degrade their grid points to `ScriptFault` while the rest completes.
//!
//! Run with: `cargo run --example scripted_campaign`

use malsim::prelude::*;
use malsim::script_api;

fn main() {
    let builder = ScenarioBuilder::new(7);

    // --- 1. A well-behaved scenario script under least privilege ---------
    let courier = "\
#! name: courier-sweep
#! grant: fs_scan exfil
#! fuel: 50000
log(\"sweep start\")
let hits = scan_files(\".ini\")
for h in hits do exfil(h) end
return len(hits)";
    let scenario = match builder.script_scenario(courier) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let (mut world, mut sim) = builder.office_lan(5);
    match scenario.run(&mut world, &mut sim) {
        Ok(report) => {
            println!("=== courier-sweep ===");
            println!(
                "returned {:?}, fuel {}, mem {} B, {} effects",
                report.value,
                report.fuel_used,
                report.mem_allocated,
                report.effects.len()
            );
        }
        Err(fault) => println!("unexpected fault: {} ({})", fault.error, fault.script_id),
    }

    // --- 2. A rogue script is stopped by the capability gate -------------
    let rogue = "\
#! name: rogue-wiper
#! grant: fs_scan
detonate(hosts()[0])";
    println!("\n=== rogue-wiper ===");
    match script_api::run_source(rogue, &mut world, &mut sim) {
        Ok(_) => println!("BUG: the wipe should have been denied"),
        Err(fault) => {
            println!("contained: {} (fuel used: {})", fault.error, fault.fuel_used);
            println!("bricked hosts after denial: {}", world.bricked_count());
        }
    }

    // --- 3. Hostile scripts degrade single sweep points, not the sweep ---
    let scripts: Vec<(&str, &str)> = vec![
        ("census", "#! name: census\nreturn host_count()"),
        ("spin", "#! name: spin\n#! fuel: 2000\nwhile true do end"),
        ("bomb", "#! name: bomb\n#! memory: 4096\nlet s = \"x\"\nwhile true do s = s .. s end"),
        ("probe", "#! name: probe\n#! grant: net_dial\nreturn net_dial(\"example.com\")"),
        ("rogue", "#! name: rogue\nexfil(\"c:\\\\secrets\")"),
    ];
    println!("\n=== hostile sweep ===");
    let supervisor = SweepSupervisor::default();
    let outcomes = sweep::run_supervised_fallible(
        "scripted",
        7,
        &scripts,
        sweep::PoolConfig::explicit(2),
        &supervisor,
        |ctx, (_, src)| {
            let (mut world, mut sim) = ScenarioBuilder::new(ctx.derived_seed()).office_lan(3);
            script_api::run_source(src, &mut world, &mut sim).map(|r| PointRun::complete(r.row()))
        },
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            PointOutcome::Completed { run, .. } => {
                println!("point {i} ({}): completed -> {}", scripts[i].0, run.result.to_compact_string());
            }
            PointOutcome::ScriptFault { script_id, error, fuel_used, .. } => {
                println!("point {i} ({script_id}): FAULT after {fuel_used} fuel -> {error}");
            }
            PointOutcome::Poisoned { panic_msg, .. } => {
                println!("point {i}: poisoned -> {panic_msg}");
            }
        }
    }
    let faults = outcomes.iter().filter(|o| matches!(o, PointOutcome::ScriptFault { .. })).count();
    println!("{} of {} points faulted; the rest completed.", faults, scripts.len());
}
