//! The Shamoon campaign at enterprise scale: share-based spread through a
//! multi-site fleet, the hard-coded 2012-08-15 08:08 UTC trigger, the wipe,
//! and the reporter tallies.
//!
//! Run with: `cargo run --release --example shamoon_wiper [zones] [hosts_per_zone]`
//! Default scale is 30 zones x 99 hosts (~3k). The Aramco-scale run the
//! paper reports (~30k workstations) is
//! `cargo run --release --example shamoon_wiper 300 99`.

use malsim::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let zones: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let hosts_per_zone: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(99);
    let seeded = (zones / 2).max(1);

    println!(
        "shamoon campaign: {zones} sites x {} hosts (fleet {}), seeding {seeded} sites\n",
        hosts_per_zone,
        zones * (hosts_per_zone + 1),
    );
    let r = experiments::e9_shamoon_wipe(815, zones, hosts_per_zone, seeded);

    let mut t = Table::new(vec!["quantity".into(), "value".into()]);
    t.row(vec!["fleet size".into(), r.fleet.to_string()]);
    t.row(vec!["infected before trigger".into(), r.infected.to_string()]);
    t.row(vec!["hosts bricked at 08:08 UTC".into(), r.bricked.to_string()]);
    t.row(vec!["wipe reports phoned home".into(), r.reports.to_string()]);
    t.row(vec!["hours from seeding to trigger".into(), format!("{:.1}", r.hours_to_trigger)]);
    print!("{t}");

    println!("\npaper claims reproduced:");
    println!("- infection spreads quietly over open shares until the hard-coded date;");
    println!("- at the trigger, files under download/document/picture folders are");
    println!("  overwritten by a truncated image fragment (the coding-mistake model),");
    println!("  then the signed third-party driver lets user-mode code destroy the MBR;");
    println!("- every wiped host phones its tally home in a plain HTTP GET.");
    println!(
        "\nbricked fraction: {:.1}% of the fleet (the paper reports ~30,000 \
         workstations destroyed at Saudi Aramco)",
        100.0 * r.bricked as f64 / r.fleet as f64
    );
}
