//! Schema lint for exported Chrome traces: re-parses a `--trace-out` file
//! through the strict canonical-JSON parser and validates the trace-event
//! shape, exiting non-zero on any drift.
//!
//! CI runs this against a freshly exported trace so the exporter and the
//! parser can never silently diverge:
//!
//! ```text
//! cargo run --example natanz -- --trace-out /tmp/t.json
//! cargo run --example trace_lint -- /tmp/t.json
//! ```

use malsim::export;
use malsim::report;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_lint <trace.json>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_lint: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match report::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace_lint: {path} is not canonical JSON: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = export::validate_chrome_trace(&doc) {
        eprintln!("trace_lint: {path} violates the trace-event schema: {e}");
        std::process::exit(1);
    }
    // Round-trip stability: the canonical writer must reproduce the file.
    if doc.to_canonical_string() != text {
        eprintln!("trace_lint: {path} is not in canonical form (serialize∘parse drifted)");
        std::process::exit(1);
    }
    let events = match &doc {
        report::Json::Obj(top) => top.iter().find(|(k, _)| k == "traceEvents").map_or(0, |(_, v)| {
            if let report::Json::Arr(a) = v {
                a.len()
            } else {
                0
            }
        }),
        _ => 0,
    };
    println!("trace_lint: {path} ok ({events} trace events)");
}
