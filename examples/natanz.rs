//! The Figure-1 scenario: Stuxnet's three-level chain against a Natanz-like
//! site — USB into the contractor office, courier into the air-gapped plant,
//! Step 7 library swap, PLC implant, and centrifuge destruction with the
//! operator and safety system seeing nothing.
//!
//! Run with: `cargo run --example natanz`
//!
//! Options:
//! * `--trace-out <path>` — write the run as a Chrome trace-event JSON file
//!   (load it at `ui.perfetto.dev`); byte-identical across runs and thread
//!   counts for the same seed.
//! * `--jsonl-out <path>` — write the span/event stream as JSONL.
//! * `--profile` — print the scheduler's dispatch-profiling summary.
//! * `--check-invariants` — run the kernel + world invariant checker after
//!   every dispatched event and report what it saw (exit 1 on violations).
//!
//! Setting `MALSIM_METRICS=1` arms the process-wide telemetry plane; every
//! output above stays byte-identical (telemetry only observes).

use malsim::prelude::*;

/// Exits with a Display-rendered message instead of a raw `Debug` panic.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn main() {
    let mut trace_out: Option<String> = None;
    let mut jsonl_out: Option<String> = None;
    let mut profile = false;
    let mut check_invariants = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().unwrap_or_else(|| fail("--trace-out takes a path")))
            }
            "--jsonl-out" => {
                jsonl_out = Some(args.next().unwrap_or_else(|| fail("--jsonl-out takes a path")))
            }
            "--profile" => profile = true,
            "--check-invariants" => check_invariants = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: natanz [--trace-out <path>] [--jsonl-out <path>] [--profile] \
                     [--check-invariants]"
                );
                std::process::exit(2);
            }
        }
    }

    // `MALSIM_METRICS=1` arms the telemetry plane; the trace and report
    // outputs must stay byte-identical either way (telemetry only observes).
    telemetry::arm_if_env();

    let seed = 2010;
    let days = 30;
    println!("running the end-to-end Stuxnet chain (seed {seed}, {days} simulated days)...\n");
    let (run, violations) = experiments::e1_stuxnet_end_to_end_checked(seed, days, profile, check_invariants);
    let experiments::E1Run { result: r, world: _, mut sim } = run;

    let mut table = Table::new(vec!["quantity".into(), "value".into()]);
    table.row(vec!["infected hosts (office + station)".into(), r.infected_hosts.to_string()]);
    table.row(vec!["plc implanted".into(), r.plc_implanted.to_string()]);
    table.row(vec!["centrifuges destroyed".into(), format!("{}/{}", r.destroyed, r.total_centrifuges)]);
    table.row(vec!["digital safety system tripped".into(), r.safety_tripped.to_string()]);
    table.row(vec!["abnormal frames shown to operator".into(), r.operator_anomalies.to_string()]);
    table.row(vec![
        "days to first destruction".into(),
        r.days_to_first_destruction.map_or("n/a".into(), |d| format!("{d:.2}")),
    ]);
    print!("{table}");

    println!("\npaper claims reproduced:");
    println!("- the payload armed only on the Profibus + targeted-vendor configuration;");
    println!("- the 1410/2/1064 Hz cycling destroyed the cascade;");
    println!("- record/replay telemetry kept the operator view and the digital");
    println!("  safety system reading normal values throughout.");

    // The causal view: every destruction span walked back to its root
    // infection via parent links.
    let chains = causal_chains(&sim.spans);
    if !chains.is_empty() {
        println!("\ncausal chains (leaf <= ... <= root infection):");
        print!("{chains}");
    }

    if let Some(path) = &trace_out {
        let doc = export::chrome_trace(&sim.trace, &sim.spans);
        if let Err(e) = export::validate_chrome_trace(&doc) {
            fail(format!("exporter produced a schema-invalid document: {e}"));
        }
        if let Err(e) = std::fs::write(path, doc.to_canonical_string()) {
            fail(format!("cannot write {path}: {e}"));
        }
        println!("\nwrote Perfetto-loadable trace to {path}");
    }
    if let Some(path) = &jsonl_out {
        if let Err(e) = std::fs::write(path, export::jsonl(&sim.trace, &sim.spans)) {
            fail(format!("cannot write {path}: {e}"));
        }
        println!("wrote JSONL feed to {path}");
    }
    if profile {
        if let Some(summary) = sim.finish_profile() {
            println!("\nscheduler profile:");
            print!("{}", summary.render());
        }
    }
    if check_invariants {
        if violations.is_empty() {
            println!("\ninvariant checker: every dispatched event satisfied all laws.");
        } else {
            eprintln!("\ninvariant checker found {} violation(s):", violations.len());
            for v in &violations {
                eprintln!("- {v}");
            }
            std::process::exit(1);
        }
    }

    // The targeting control: the same infection against a wrong-vendor plant.
    println!("\ntargeting discipline (E3):");
    let mut t = Table::new(vec!["plc configuration".into(), "payload armed".into(), "destroyed".into()]);
    for row in experiments::e3_plc_targeting(seed, 10) {
        t.row(vec![row.configuration, row.armed.to_string(), row.destroyed.to_string()]);
    }
    print!("{t}");
}
