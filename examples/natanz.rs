//! The Figure-1 scenario: Stuxnet's three-level chain against a Natanz-like
//! site — USB into the contractor office, courier into the air-gapped plant,
//! Step 7 library swap, PLC implant, and centrifuge destruction with the
//! operator and safety system seeing nothing.
//!
//! Run with: `cargo run --example natanz`

use malsim::prelude::*;

fn main() {
    let seed = 2010;
    let days = 30;
    println!("running the end-to-end Stuxnet chain (seed {seed}, {days} simulated days)...\n");
    let r = experiments::e1_stuxnet_end_to_end(seed, days);

    let mut table = Table::new(vec!["quantity".into(), "value".into()]);
    table.row(vec!["infected hosts (office + station)".into(), r.infected_hosts.to_string()]);
    table.row(vec!["plc implanted".into(), r.plc_implanted.to_string()]);
    table.row(vec!["centrifuges destroyed".into(), format!("{}/{}", r.destroyed, r.total_centrifuges)]);
    table.row(vec!["digital safety system tripped".into(), r.safety_tripped.to_string()]);
    table.row(vec!["abnormal frames shown to operator".into(), r.operator_anomalies.to_string()]);
    table.row(vec![
        "days to first destruction".into(),
        r.days_to_first_destruction.map_or("n/a".into(), |d| format!("{d:.2}")),
    ]);
    print!("{table}");

    println!("\npaper claims reproduced:");
    println!("- the payload armed only on the Profibus + targeted-vendor configuration;");
    println!("- the 1410/2/1064 Hz cycling destroyed the cascade;");
    println!("- record/replay telemetry kept the operator view and the digital");
    println!("  safety system reading normal values throughout.");

    // The targeting control: the same infection against a wrong-vendor plant.
    println!("\ntargeting discipline (E3):");
    let mut t = Table::new(vec!["plc configuration".into(), "payload armed".into(), "destroyed".into()]);
    for row in experiments::e3_plc_targeting(seed, 10) {
        t.row(vec![row.configuration, row.armed.to_string(), row.destroyed.to_string()]);
    }
    print!("{t}");
}
