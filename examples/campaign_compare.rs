//! The Section-V comparison: run all three campaigns in one world and print
//! the derived trend matrix plus per-campaign timelines.
//!
//! Run with: `cargo run --example campaign_compare`

use malsim::prelude::*;

fn main() {
    let seed = 5;
    println!("deriving the Section-V trend matrix from a combined run (seed {seed})...\n");
    let profiles = experiments::e10_trend_matrix(seed);
    print!("{}", trend_table(&profiles));

    println!("\nreading the matrix against the paper's six trends:");
    for p in &profiles {
        println!(
            "- {}: {} infections, {} zero-day-style vectors, targeted={}, \
             certified={}, {} module updates, usb={}, {} suicides → sophistication {:.1}/10",
            p.family,
            p.infections,
            p.zero_day_vectors,
            p.targeted,
            p.certified,
            p.modular_updates,
            p.usb_vector,
            p.suicides,
            p.sophistication
        );
    }

    println!("\nstealth/detection ablation (E11): aggressive spreading trips behavioural AV");
    let mut t = Table::new(vec!["actions/round".into(), "infected".into(), "behavioural alerts".into()]);
    for row in experiments::e11_stealth_tradeoff(seed, 20, &[1.0, 4.0, 12.0]) {
        t.row(vec![format!("{:.0}", row.aggressiveness), row.infected.to_string(), row.alerts.to_string()]);
    }
    print!("{t}");

    println!("\nanti-forensics (E12): recovery score before vs after SUICIDE");
    let mut t = Table::new(vec!["scenario".into(), "recovery score".into(), "c2 log lines".into()]);
    for row in experiments::e12_suicide_forensics(seed, 8) {
        t.row(vec![
            row.scenario,
            format!("{:.2}", row.recovery_score),
            row.server_logs_remaining.to_string(),
        ]);
    }
    print!("{t}");
}
