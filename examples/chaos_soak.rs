//! Storage-chaos soak: seeded I/O-fault schedules × power-cut/repair/resume
//! rounds over a multi-tenant job-queue run, emitting a canonical-JSON
//! durability attestation.
//!
//! Per schedule the harness runs the same three-tenant workload three ways:
//!
//! 1. **reference** — healthy disk, no journal: the ground-truth reports;
//! 2. **chaos** — journaled through a seeded `ChaosFs` injecting fsync
//!    failures, short/torn writes, `EINTR`, `ENOSPC`, and transient open
//!    errors (every 7th schedule additionally runs on a near-full disk):
//!    reports must be byte-identical to the reference;
//! 3. **crash** — a power-cut image of the chaos journal (durable prefix
//!    plus a seeded torn tail) is compacted with
//!    `checkpoint::repair_journal` and the queue resumed over it: reports
//!    must again be byte-identical, and no record that was fsynced before
//!    the cut may be lost.
//!
//! The attestation (stdout, and `--out <path>`) aggregates faults injected
//! by kind, transient retries burned, journals quarantined, fsynced records
//! lost (must be 0), and the two byte-identity verdicts; the process exits
//! non-zero on any violation.
//!
//! Usage: `cargo run --release --example chaos_soak [seed] [threads]
//!   [--schedules <n>] [--out <path>]`

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use malsim::chaosfs::{ChaosFs, FaultSchedule};
use malsim::checkpoint::{self, journal_line_key};
use malsim::jobs::{self, JobBudget, JobQueue, JobSpec, Priority, QueueConfig, QueueRun, SeedPolicy};
use malsim::report::{self, Json};
use malsim::scenario::ScenarioBuilder;
use malsim::script_api;
use malsim::sweep::{PointRun, PoolConfig, ScriptFaultInfo, Truncation};
use malsim::telemetry;
use malsim_kernel::rng::SimRng;
use malsim_kernel::sched::Sim;
use malsim_kernel::time::{SimDuration, SimTime};

/// A cheap deterministic point: a tiny event-driven accumulator simulation
/// seeded from the point, honouring the job's watchdog.
fn sim_row(jp: &jobs::JobPoint<'_>) -> PointRun<Json> {
    let events = jp.params.get("events").and_then(Json::as_u64).unwrap_or(8);
    let mut sim: Sim<u64> = Sim::new(SimTime::EPOCH, jp.seed());
    for i in 0..events {
        sim.schedule_in(SimDuration::from_secs(i + 1), |acc: &mut u64, sim: &mut Sim<u64>| {
            let draw: u64 = sim.rng.range(0..65_536u64);
            *acc = acc.wrapping_mul(31).wrapping_add(draw);
        });
    }
    let mut acc = jp.seed();
    let until = SimTime::EPOCH + SimDuration::from_secs(events + 2);
    let run = sim.run_until_watched(&mut acc, until, jp.watchdog);
    PointRun {
        result: Json::obj([
            ("params", jp.params.clone()),
            ("acc", Json::U64(acc)),
            ("executed", Json::U64(run.executed)),
        ]),
        truncation: Truncation::from_stop(run.reason),
        violations: Vec::new(),
    }
}

/// The shared point function: simulation points plus scenario-script points
/// (the red-team tenant) over a small office LAN.
fn eval(jp: &jobs::JobPoint<'_>) -> Result<PointRun<Json>, ScriptFaultInfo> {
    match jp.params.get("kind").and_then(Json::as_str) {
        Some("script") => {
            let src = jp.params.get("src").and_then(Json::as_str).expect("script points carry src");
            let (mut world, mut sim) = ScenarioBuilder::new(jp.seed()).office_lan(2);
            script_api::run_source(src, &mut world, &mut sim).map(|r| PointRun::complete(r.row()))
        }
        _ => Ok(sim_row(jp)),
    }
}

fn sim_grid(points: u64, events: u64) -> Vec<Json> {
    (0..points)
        .map(|t| Json::obj([("kind", "sim".into()), ("events", Json::U64(events)), ("tag", Json::U64(t))]))
        .collect()
}

/// The three-tenant workload under test: two simulation sweeps and a
/// red-team script replay, all seeded from the schedule.
fn workload(seed: u64) -> Vec<JobSpec> {
    let spec = |job_id: &str, tenant: &str, base_seed: u64, priority, grid| JobSpec {
        job_id: job_id.to_owned(),
        tenant: tenant.to_owned(),
        experiment: "chaos-soak",
        base_seed,
        seed_policy: SeedPolicy::Derived,
        priority,
        budget: JobBudget::default(),
        grid,
    };
    let scripts = ["#! name: census\nreturn host_count()", "#! name: clock\nreturn now_ms()"]
        .iter()
        .map(|src| Json::obj([("kind", "script".into()), ("src", (*src).into())]))
        .collect();
    vec![
        spec("atlas", "research", seed, Priority::Normal, sim_grid(4, 8)),
        spec("bolt", "ops", seed ^ 0x5bd1_e995, Priority::Low, sim_grid(3, 12)),
        spec("crow", "red-team", seed ^ 0x9e37_79b9, Priority::High, scripts),
    ]
}

/// Runs the workload through one queue configuration and returns the run
/// plus each job's canonical report.
fn run_queue(cfg: QueueConfig, seed: u64) -> (QueueRun, Vec<String>) {
    let mut queue = JobQueue::new(cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for spec in workload(seed) {
        queue.submit(spec).expect("the soak workload fits the queue");
    }
    let run = queue.run(eval).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let reports = run.outcomes.iter().map(|o| o.report().to_canonical_string()).collect();
    (run, reports)
}

/// Keys of the complete journal lines inside the durable prefix of a crash
/// image: exactly the records an fsync acknowledged before the cut.
fn durable_keys(image: &[u8], durable_len: usize) -> BTreeSet<String> {
    let durable = &image[..durable_len.min(image.len())];
    String::from_utf8_lossy(durable).lines().filter_map(journal_line_key).collect()
}

fn main() -> ExitCode {
    let mut schedules = 25usize;
    let mut out: Option<PathBuf> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} takes a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schedules" => schedules = value(&mut args, "--schedules").parse().unwrap_or(25),
            "--out" => out = Some(PathBuf::from(value(&mut args, "--out"))),
            other if !other.starts_with("--") => positional.push(other.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chaos_soak [seed] [threads] [--schedules <n>] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    let mut positional = positional.into_iter();
    let base_seed: u64 = positional.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let threads: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .or_else(|| std::env::var("MALSIM_THREADS").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(2)
        .max(1);
    let pool = PoolConfig::explicit(threads);

    // Arm the metrics plane so retry/quarantine counters land in the
    // attestation; `reset` isolates this process's counts.
    telemetry::arm();
    telemetry::reset();

    let temp = |tag: &str| -> PathBuf {
        std::env::temp_dir().join(format!("malsim-chaos-soak-{}-{tag}.jnl", std::process::id()))
    };
    let mut faults_by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut chaos_mismatches = 0u64;
    let mut resume_mismatches = 0u64;
    let mut records_lost = 0u64;
    let mut quarantined_runs = 0u64;
    let mut violations: Vec<Json> = Vec::new();
    let violation = |violations: &mut Vec<Json>, msg: String| {
        eprintln!("violation: {msg}");
        violations.push(Json::Str(msg));
    };

    for i in 0..schedules {
        let sched_seed = SimRng::derive_stream_seed(base_seed, "chaos", i as u64);
        let mut schedule = FaultSchedule::mixed(sched_seed);
        if i % 7 == 3 {
            // Every 7th schedule also runs against a nearly-full disk so the
            // ENOSPC quarantine path soaks alongside the transient faults.
            schedule.disk_capacity = Some(2048);
        }

        // Round 1 — reference: healthy disk, no journal.
        let base_cfg = QueueConfig { pool, ..QueueConfig::default() };
        let (_, reference) = run_queue(base_cfg.clone(), sched_seed);

        // Round 2 — chaos, uninterrupted: journaled through the fault plane.
        let chaos = ChaosFs::new(schedule);
        let journal = temp(&format!("s{i}"));
        let _ = std::fs::remove_file(&journal);
        let chaos_cfg = QueueConfig {
            journal: Some(journal.clone()),
            storage: Some(Arc::new(chaos.clone())),
            ..base_cfg.clone()
        };
        let (chaos_run, chaos_reports) = run_queue(chaos_cfg, sched_seed);
        quarantined_runs += u64::from(chaos_run.storage_degraded.is_some());
        for (kind, n) in chaos.stats().injected {
            *faults_by_kind.entry(kind).or_insert(0) += n;
        }
        if chaos_reports != reference {
            chaos_mismatches += 1;
            violation(&mut violations, format!("schedule {i}: chaos run diverged from the reference"));
        }

        // Round 3 — power cut, repair, resume: rebuild the journal as a
        // crash would leave it (durable prefix + seeded torn tail), compact
        // it, and resume on a healthy disk.
        let ops = chaos.ops();
        let cut_op = 1 + SimRng::derive_stream_seed(sched_seed, "cut", i as u64) % ops.max(1);
        let image = chaos.crash_image(&journal, cut_op, true).unwrap_or_default();
        let durable_len = chaos.durable_len_at(&journal, cut_op) as usize;
        let fsynced = durable_keys(&image, durable_len);
        let crashed = temp(&format!("s{i}-crash"));
        std::fs::write(&crashed, &image).expect("writing the crash image");
        if let Err(e) = checkpoint::repair_journal(&crashed) {
            violation(&mut violations, format!("schedule {i}: repair failed: {e}"));
        }
        let repaired: BTreeSet<String> = std::fs::read_to_string(&crashed)
            .unwrap_or_default()
            .lines()
            .filter_map(journal_line_key)
            .collect();
        let lost: Vec<&String> = fsynced.difference(&repaired).collect();
        if !lost.is_empty() {
            records_lost += lost.len() as u64;
            violation(
                &mut violations,
                format!("schedule {i}: {} fsynced record(s) lost across repair: {lost:?}", lost.len()),
            );
        }
        let resume_cfg = QueueConfig { journal: Some(crashed.clone()), resume: true, ..base_cfg.clone() };
        let (_, resumed_reports) = run_queue(resume_cfg, sched_seed);
        if resumed_reports != reference {
            resume_mismatches += 1;
            violation(&mut violations, format!("schedule {i}: resumed run diverged from the reference"));
        }
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&crashed);
    }

    // Retry/quarantine totals come from the deterministic metrics section so
    // the attestation and the telemetry plane can never disagree.
    let metrics = report::parse(&telemetry::render_deterministic()).unwrap_or(Json::Null);
    let metric = |name: &str| metrics.get(name).and_then(Json::as_u64).unwrap_or(0);
    let verdict = violations.is_empty();
    let attestation = Json::obj([
        ("schedules", Json::U64(schedules as u64)),
        ("base_seed", Json::U64(base_seed)),
        ("threads", Json::U64(threads as u64)),
        (
            "faults_injected",
            Json::Obj(faults_by_kind.iter().map(|(k, n)| ((*k).to_owned(), Json::U64(*n))).collect()),
        ),
        ("io_retries_burned", Json::U64(metric("malsim_ckpt_io_retries_total"))),
        ("journals_quarantined", Json::U64(quarantined_runs)),
        ("records_lost_fsynced", Json::U64(records_lost)),
        (
            "byte_identity",
            Json::obj([
                ("chaos_mismatches", Json::U64(chaos_mismatches)),
                ("resume_mismatches", Json::U64(resume_mismatches)),
            ]),
        ),
        ("violations", Json::Arr(violations)),
        ("verdict", Json::Str(if verdict { "pass" } else { "fail" }.to_owned())),
    ]);
    let rendered = attestation.to_canonical_string();
    print!("{rendered}");
    if let Some(path) = out {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
    }
    if verdict {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
