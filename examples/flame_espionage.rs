//! The Flame espionage lifecycle: WPAD/fake-update spread across a LAN,
//! metadata-first exfiltration through the newsforyou platform, the air-gap
//! USB ferry, and the fleet-wide SUICIDE after discovery.
//!
//! Run with: `cargo run --example flame_espionage`

use malsim::prelude::*;
use malsim_kernel::time::SimDuration;
use malsim_malware::flame::candc::StolenData;
use malsim_os::fs::FileData;
use malsim_os::path::WinPath;
use malsim_os::usb::UsbDrive;

fn main() {
    let seed = 2012;
    let lan = 12;
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(lan);
    let pki = Pki::install(&mut world);
    pki.arm_flame(&mut world, &mut sim, 22, 80);

    // Give every desk some documents.
    for i in 0..lan {
        let host = HostId::new(i);
        for (name, size) in [("contract.docx", 300_000), ("site-plan.dwg", 900_000), ("notes.txt", 4_000)] {
            let p = WinPath::new(format!(r"C:\Users\user\Documents\{name}"));
            world.hosts[host].fs.write(&p, FileData::Bytes(vec![0; size]), sim.now()).unwrap();
        }
    }

    // Patient zero, SNACK's WPAD claim, and daily update checks.
    let seed_host = HostId::new(0);
    flame::client::infect_host(&mut world, &mut sim, seed_host, "spearphish");
    flame::mitm::snack_claim_wpad(&mut world, &mut sim, seed_host);
    activity::schedule_update_checks(
        &mut sim,
        (0..lan).map(HostId::new).collect(),
        SimDuration::from_hours(24),
    );
    activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));

    // An air-gapped machine with classified material, reachable only by USB.
    let airgap = world.topology.add_zone("protected", false);
    let mut iso = malsim_os::host::Host::new(
        "protected-pc",
        malsim_os::host::WindowsVersion::Xp,
        malsim_os::host::HostRole::Workstation,
        sim.now(),
    );
    iso.config.internet_access = false;
    let iso_id = world.hosts.push(iso);
    world.topology.place(iso_id, airgap);
    world.hosts[iso_id]
        .fs
        .write(&WinPath::new(r"C:\classified\design.dwg"), FileData::Bytes(vec![0; 700_000]), sim.now())
        .unwrap();
    flame::client::infect_host(&mut world, &mut sim, iso_id, "usb");
    let courier = world.usb_drives.push(UsbDrive::new("courier"));
    activity::schedule_usb_courier(&mut sim, courier, vec![seed_host, iso_id], SimDuration::from_hours(24));

    // Two weeks of espionage.
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(14));

    let platform = world.campaigns.flame_platform.as_ref().unwrap();
    println!("after 14 days:");
    let mut t = Table::new(vec!["quantity".into(), "value".into()]);
    t.row(vec!["infected clients".into(), world.campaigns.flame_clients.len().to_string()]);
    t.row(vec!["mitm infections".into(), sim.metrics.counter("flame.mitm_infections").to_string()]);
    t.row(vec!["summaries sent".into(), sim.metrics.counter("flame.summaries").to_string()]);
    t.row(vec!["content uploads".into(), sim.metrics.counter("flame.content_uploads").to_string()]);
    t.row(vec![
        "bytes at attack center".into(),
        format!("{:.1} MB", platform.attack_center.total_bytes as f64 / 1e6),
    ]);
    t.row(vec!["usb-ferried documents".into(), sim.metrics.counter("flame.usb_ferried_uploads").to_string()]);
    print!("{t}");

    let ferried = platform
        .attack_center
        .retrieved
        .iter()
        .any(|d| matches!(d, StolenData::FileContent { host, .. } if host == "protected-pc"));
    println!("\nclassified material ferried out of the air-gapped zone: {ferried}");

    // Discovery: the operators pull the plug.
    println!("\n[publication day: the operators broadcast SUICIDE]");
    flame::suicide::broadcast_kill(&mut world, &mut sim);
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(1));
    println!("clients remaining: {}", world.campaigns.flame_clients.len());
    println!("suicides executed: {}", sim.metrics.counter("flame.suicides"));
    let logs: usize =
        world.campaigns.flame_platform.as_ref().unwrap().servers.iter().map(|s| s.logs.len()).sum();
    println!("c2 server log lines remaining after LogWiper: {logs}");
}
