//! Quickstart: build a small office LAN, seed Stuxnet via USB, watch it
//! spread, and print the trace and metrics.
//!
//! Run with: `cargo run --example quickstart`

use malsim::prelude::*;
use malsim_kernel::time::SimDuration;
use malsim_os::usb::UsbDrive;

fn main() {
    // A 6-host unpatched office LAN, deterministic under seed 7.
    let (mut world, mut sim) = ScenarioBuilder::new(7).office_lan(6);

    // Wire up the certificate world and hand Stuxnet its stolen credential.
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    pki.register_stuxnet_c2(&mut world);

    // A contaminated USB stick circulates through three desks.
    let usb = world.usb_drives.push(UsbDrive::new("conference-gift"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
    let route: Vec<HostId> = (0..3).map(HostId::new).collect();
    activity::schedule_usb_courier(&mut sim, usb, route, SimDuration::from_hours(4));
    activity::schedule_stuxnet_checkins(&mut sim, SimDuration::from_hours(8));

    // Run three simulated days.
    let until = sim.now() + SimDuration::from_days(3);
    sim.run_until(&mut world, until);

    println!("=== trace (first 20 events) ===");
    for event in sim.trace.events().iter().take(20) {
        println!("{event}");
    }

    println!("\n=== timeline ===");
    let timeline = Timeline::from_trace(&sim.trace);
    print!("{}", timeline.render());

    println!("\n=== metrics ===");
    print!("{}", sim.metrics);

    println!(
        "\ninfected {}/{} hosts in 3 days (spooler spread fills the LAN after the USB seeds it)",
        world.campaigns.stuxnet.infections.len(),
        world.hosts.len()
    );
}
